package verifier

// Property tests for the abstract transfer functions, in the spirit of
// Vishwanathan et al.'s "Verifying the Verifier": for random abstract
// register states and random concrete members, the concrete result of
// every ALU operation must be contained in the abstract result, and
// branch reasoning must never exclude a concrete behaviour.

import (
	"math/rand"
	"testing"

	"bcf/internal/ebpf"
	"bcf/internal/tnum"
)

// randAbstract builds a random sound abstraction along with a concrete
// member: it starts from the member and widens randomly.
func randAbstract(rng *rand.Rand) (RegState, uint64) {
	v := rng.Uint64()
	switch rng.Intn(4) {
	case 0: // exact constant
		return constScalar(v), v
	case 1: // unknown
		return unknownScalar(), v
	case 2: // range around the value
		r := unknownScalar()
		span := rng.Uint64() % (1 << uint(rng.Intn(40)))
		lo := v - rng.Uint64()%(span+1)
		r.UMin, r.UMax = lo, lo+span
		if r.UMax < r.UMin { // wrapped: give up on the range
			r.UMin, r.UMax = 0, ^uint64(0)
		}
		r.Var = tnum.Range(r.UMin, r.UMax)
		r.sync()
		return r, v
	default: // tnum with random known bits
		mask := rng.Uint64()
		r := unknownScalar()
		r.Var = tnum.Tnum{Value: v &^ mask, Mask: mask}
		r.sync()
		return r, v
	}
}

var propOps = []uint8{
	ebpf.AluADD, ebpf.AluSUB, ebpf.AluMUL, ebpf.AluAND, ebpf.AluOR,
	ebpf.AluXOR, ebpf.AluLSH, ebpf.AluRSH, ebpf.AluARSH,
	ebpf.AluDIV, ebpf.AluMOD,
}

func TestAluScalarSoundness64(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for iter := 0; iter < 30000; iter++ {
		dstAbs, dstVal := randAbstract(rng)
		srcAbs, srcVal := randAbstract(rng)
		op := propOps[rng.Intn(len(propOps))]
		want, ok := foldConst(dstVal, srcVal, op, false)
		if !ok {
			continue
		}
		got := dstAbs
		aluScalar(&got, &srcAbs, op, false)
		if !got.wellFormed() {
			t.Fatalf("op %s produced malformed state: %+v", ebpf.AluOpName(op), got)
		}
		if !got.contains(want) {
			t.Fatalf("unsound %s: dst=%v(%d) src=%v(%d) concrete=%d abstract=%v",
				ebpf.AluOpName(op), dstAbs.Var, dstVal, srcAbs.Var, srcVal, want, got)
		}
	}
}

func TestAluScalarSoundness32(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	for iter := 0; iter < 30000; iter++ {
		dstAbs, dstVal := randAbstract(rng)
		srcAbs, srcVal := randAbstract(rng)
		op := propOps[rng.Intn(len(propOps))]
		want, ok := foldConst(dstVal, srcVal, op, true)
		if !ok {
			continue
		}
		got := dstAbs
		aluScalar(&got, &srcAbs, op, true)
		if !got.wellFormed() {
			t.Fatalf("op32 %s produced malformed state", ebpf.AluOpName(op))
		}
		if !got.contains(want) {
			t.Fatalf("unsound 32-bit %s: dst=%d src=%d concrete=%#x abstract=%v",
				ebpf.AluOpName(op), dstVal, srcVal, want, got)
		}
	}
}

func TestIsBranchTakenSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	jmpOps := []uint8{
		ebpf.JmpJEQ, ebpf.JmpJNE, ebpf.JmpJGT, ebpf.JmpJGE, ebpf.JmpJLT,
		ebpf.JmpJLE, ebpf.JmpJSGT, ebpf.JmpJSGE, ebpf.JmpJSLT, ebpf.JmpJSLE,
		ebpf.JmpJSET,
	}
	for iter := 0; iter < 30000; iter++ {
		dstAbs, dstVal := randAbstract(rng)
		srcAbs, srcVal := randAbstract(rng)
		op := jmpOps[rng.Intn(len(jmpOps))]
		is32 := rng.Intn(2) == 0
		a, b := dstVal, srcVal
		if is32 {
			a, b = uint64(uint32(a)), uint64(uint32(b))
		}
		concrete, err := concreteBranch(op, a, b, is32)
		if err != nil {
			continue
		}
		switch isBranchTaken(&dstAbs, &srcAbs, op, is32) {
		case branchAlways:
			if !concrete {
				t.Fatalf("unsound always-taken: op=%s dst=%d src=%d is32=%v dstAbs=%+v srcAbs=%+v",
					ebpf.JmpOpName(op|ebpf.ClassJMP), dstVal, srcVal, is32, dstAbs, srcAbs)
			}
		case branchNever:
			if concrete {
				t.Fatalf("unsound never-taken: op=%s dst=%d src=%d is32=%v",
					ebpf.JmpOpName(op|ebpf.ClassJMP), dstVal, srcVal, is32)
			}
		}
	}
}

// concreteBranch evaluates the jump condition on concrete values.
func concreteBranch(op uint8, a, b uint64, is32 bool) (bool, error) {
	var sa, sb int64
	if is32 {
		sa, sb = int64(int32(uint32(a))), int64(int32(uint32(b)))
	} else {
		sa, sb = int64(a), int64(b)
	}
	switch op {
	case ebpf.JmpJEQ:
		return a == b, nil
	case ebpf.JmpJNE:
		return a != b, nil
	case ebpf.JmpJGT:
		return a > b, nil
	case ebpf.JmpJGE:
		return a >= b, nil
	case ebpf.JmpJLT:
		return a < b, nil
	case ebpf.JmpJLE:
		return a <= b, nil
	case ebpf.JmpJSGT:
		return sa > sb, nil
	case ebpf.JmpJSGE:
		return sa >= sb, nil
	case ebpf.JmpJSLT:
		return sa < sb, nil
	case ebpf.JmpJSLE:
		return sa <= sb, nil
	case ebpf.JmpJSET:
		return a&b != 0, nil
	}
	return false, errUnknownOp
}

var errUnknownOp = &Error{Msg: "unknown op"}

func TestRegSetMinMaxSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	jmpOps := []uint8{
		ebpf.JmpJEQ, ebpf.JmpJNE, ebpf.JmpJGT, ebpf.JmpJGE, ebpf.JmpJLT,
		ebpf.JmpJLE, ebpf.JmpJSGT, ebpf.JmpJSGE, ebpf.JmpJSLT, ebpf.JmpJSLE,
		ebpf.JmpJSET,
	}
	for iter := 0; iter < 30000; iter++ {
		dstAbs, dstVal := randAbstract(rng)
		srcAbs, srcVal := randAbstract(rng)
		op := jmpOps[rng.Intn(len(jmpOps))]
		is32 := rng.Intn(2) == 0
		a, b := dstVal, srcVal
		if is32 {
			a, b = uint64(uint32(a)), uint64(uint32(b))
		}
		taken, err := concreteBranch(op, a, b, is32)
		if err != nil {
			continue
		}
		// Refine along the edge the concrete values actually take; the
		// concrete values must survive the refinement.
		d, s := dstAbs, srcAbs
		regSetMinMax(&d, &s, op, taken, is32)
		if !d.wellFormed() || !s.wellFormed() {
			t.Fatalf("malformed refinement: op=%s taken=%v", ebpf.JmpOpName(op|ebpf.ClassJMP), taken)
		}
		if !d.contains(dstVal) {
			t.Fatalf("refinement excluded dst: op=%s taken=%v is32=%v dst=%d (%+v -> %+v)",
				ebpf.JmpOpName(op|ebpf.ClassJMP), taken, is32, dstVal, dstAbs, d)
		}
		if !s.contains(srcVal) {
			t.Fatalf("refinement excluded src: op=%s taken=%v is32=%v src=%d",
				ebpf.JmpOpName(op|ebpf.ClassJMP), taken, is32, srcVal)
		}
	}
}

func TestLoadedScalarBounds(t *testing.T) {
	for _, size := range []int{1, 2, 4, 8} {
		r := loadedScalar(size)
		if !r.wellFormed() {
			t.Fatalf("size %d: malformed", size)
		}
		if size < 8 {
			max := uint64(1)<<(8*size) - 1
			if r.UMax != max || r.SMin != 0 {
				t.Fatalf("size %d: bounds [%d,%d]", size, r.UMin, r.UMax)
			}
			if !r.contains(max) || !r.contains(0) {
				t.Fatalf("size %d: endpoints excluded", size)
			}
		}
	}
}

func TestZext32Property(t *testing.T) {
	rng := rand.New(rand.NewSource(505))
	for iter := 0; iter < 10000; iter++ {
		abs, val := randAbstract(rng)
		abs.zext32()
		if !abs.wellFormed() {
			t.Fatal("zext32 produced malformed state")
		}
		if !abs.contains(uint64(uint32(val))) {
			t.Fatalf("zext32 excluded the truncated member: %#x", val)
		}
	}
}

func TestApplyRefinedRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for iter := 0; iter < 10000; iter++ {
		abs, val := randAbstract(rng)
		lo := val - rng.Uint64()%1000
		hi := val + rng.Uint64()%1000
		if lo > val || hi < val {
			continue // wrapped
		}
		applyRefinedRange(&abs, lo, hi)
		if !abs.wellFormed() {
			t.Fatal("applyRefinedRange produced malformed state")
		}
		if !abs.contains(val) {
			t.Fatalf("refined range excluded the witness: val=%d lo=%d hi=%d", val, lo, hi)
		}
	}
}
