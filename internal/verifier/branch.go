package verifier

import (
	"math"

	"bcf/internal/ebpf"
	"bcf/internal/tnum"
)

// branchOutcome is the tri-state result of is_branch_taken.
type branchOutcome int8

const (
	branchUnknown branchOutcome = iota - 1
	branchNever
	branchAlways
)

// isBranchTaken decides a conditional jump statically when the abstract
// values allow it, mirroring the kernel's is_branch_taken.
func isBranchTaken(dst, src *RegState, op uint8, is32 bool) branchOutcome {
	type b struct {
		umin, umax uint64
		smin, smax int64
		tn         tnum.Tnum
	}
	var d, s b
	if is32 {
		d = b{uint64(dst.U32Min), uint64(dst.U32Max), int64(dst.S32Min), int64(dst.S32Max), dst.Var.Subreg()}
		s = b{uint64(src.U32Min), uint64(src.U32Max), int64(src.S32Min), int64(src.S32Max), src.Var.Subreg()}
	} else {
		d = b{dst.UMin, dst.UMax, dst.SMin, dst.SMax, dst.Var}
		s = b{src.UMin, src.UMax, src.SMin, src.SMax, src.Var}
	}
	switch op {
	case ebpf.JmpJEQ:
		if d.umin == d.umax && s.umin == s.umax && d.umin == s.umin {
			return branchAlways
		}
		if d.umax < s.umin || d.umin > s.umax || d.smax < s.smin || d.smin > s.smax {
			return branchNever
		}
	case ebpf.JmpJNE:
		if d.umin == d.umax && s.umin == s.umax && d.umin == s.umin {
			return branchNever
		}
		if d.umax < s.umin || d.umin > s.umax || d.smax < s.smin || d.smin > s.smax {
			return branchAlways
		}
	case ebpf.JmpJGT:
		if d.umin > s.umax {
			return branchAlways
		}
		if d.umax <= s.umin {
			return branchNever
		}
	case ebpf.JmpJGE:
		if d.umin >= s.umax {
			return branchAlways
		}
		if d.umax < s.umin {
			return branchNever
		}
	case ebpf.JmpJLT:
		if d.umax < s.umin {
			return branchAlways
		}
		if d.umin >= s.umax {
			return branchNever
		}
	case ebpf.JmpJLE:
		if d.umax <= s.umin {
			return branchAlways
		}
		if d.umin > s.umax {
			return branchNever
		}
	case ebpf.JmpJSGT:
		if d.smin > s.smax {
			return branchAlways
		}
		if d.smax <= s.smin {
			return branchNever
		}
	case ebpf.JmpJSGE:
		if d.smin >= s.smax {
			return branchAlways
		}
		if d.smax < s.smin {
			return branchNever
		}
	case ebpf.JmpJSLT:
		if d.smax < s.smin {
			return branchAlways
		}
		if d.smin >= s.smax {
			return branchNever
		}
	case ebpf.JmpJSLE:
		if d.smax <= s.smin {
			return branchAlways
		}
		if d.smin > s.smax {
			return branchNever
		}
	case ebpf.JmpJSET:
		if s.tn.IsConst() {
			v := s.tn.Value
			if d.tn.Value&v != 0 {
				return branchAlways
			}
			if (d.tn.Value|d.tn.Mask)&v == 0 {
				return branchNever
			}
		}
	}
	return branchUnknown
}

// negateJmpOp returns the operation describing the fallthrough edge.
// JSET has no dual operation; callers handle it specially.
func negateJmpOp(op uint8) (uint8, bool) {
	switch op {
	case ebpf.JmpJEQ:
		return ebpf.JmpJNE, true
	case ebpf.JmpJNE:
		return ebpf.JmpJEQ, true
	case ebpf.JmpJGT:
		return ebpf.JmpJLE, true
	case ebpf.JmpJGE:
		return ebpf.JmpJLT, true
	case ebpf.JmpJLT:
		return ebpf.JmpJGE, true
	case ebpf.JmpJLE:
		return ebpf.JmpJGT, true
	case ebpf.JmpJSGT:
		return ebpf.JmpJSLE, true
	case ebpf.JmpJSGE:
		return ebpf.JmpJSLT, true
	case ebpf.JmpJSLT:
		return ebpf.JmpJSGE, true
	case ebpf.JmpJSLE:
		return ebpf.JmpJSGT, true
	}
	return 0, false
}

// regSetMinMax refines dst and src (both scalars) under the assumption
// that the branch with operation op evaluated to `taken`, mirroring
// reg_set_min_max. The refinement operates on the width selected by is32
// and re-syncs all domains.
func regSetMinMax(dst, src *RegState, op uint8, taken bool, is32 bool) {
	if dst.Type != Scalar || src.Type != Scalar {
		return
	}
	effOp := op
	if !taken {
		if op == ebpf.JmpJSET {
			// !(dst & src): with a constant mask every masked bit is zero.
			if src.IsConst() {
				clearKnownBits(dst, src.ConstVal(), is32)
			}
			return
		}
		neg, ok := negateJmpOp(op)
		if !ok {
			return
		}
		effOp = neg
	} else if op == ebpf.JmpJSET {
		// dst & src != 0: with a single-bit constant mask that bit is one.
		if src.IsConst() {
			v := src.ConstVal()
			if v != 0 && v&(v-1) == 0 {
				setKnownBits(dst, v, is32)
			}
		}
		return
	}
	if is32 {
		d, s := dst.view32(), src.view32()
		apply32(&d, &s, effOp)
		writeBack32(dst, d)
		writeBack32(src, s)
		return
	}
	apply64(dst, src, effOp)
	dst.sync()
	src.sync()
}

// clearKnownBits records that all bits in mask are zero in dst.
func clearKnownBits(dst *RegState, mask uint64, is32 bool) {
	if is32 {
		mask &= math.MaxUint32
		sub := tnum.Intersect(dst.Var.Subreg(), tnum.Tnum{Value: 0, Mask: ^mask & math.MaxUint32})
		dst.Var = dst.Var.WithSubreg(sub)
	} else {
		dst.Var = tnum.Intersect(dst.Var, tnum.Tnum{Value: 0, Mask: ^mask})
	}
	dst.sync()
}

// setKnownBits records that all bits in mask are one in dst.
func setKnownBits(dst *RegState, mask uint64, is32 bool) {
	if is32 {
		mask &= math.MaxUint32
		sub := tnum.Intersect(dst.Var.Subreg(), tnum.Tnum{Value: mask, Mask: ^mask & math.MaxUint32})
		dst.Var = dst.Var.WithSubreg(sub)
	} else {
		dst.Var = tnum.Intersect(dst.Var, tnum.Tnum{Value: mask, Mask: ^mask})
	}
	dst.sync()
}

// apply64 refines 64-bit bounds of both operands under "dst op src".
func apply64(dst, src *RegState, op uint8) {
	switch op {
	case ebpf.JmpJEQ:
		// Both sides collapse onto the intersection.
		umin := maxU(dst.UMin, src.UMin)
		umax := minU(dst.UMax, src.UMax)
		smin := maxS(dst.SMin, src.SMin)
		smax := minS(dst.SMax, src.SMax)
		tn := tnum.Intersect(dst.Var, src.Var)
		dst.UMin, dst.UMax, dst.SMin, dst.SMax, dst.Var = umin, umax, smin, smax, tn
		src.UMin, src.UMax, src.SMin, src.SMax, src.Var = umin, umax, smin, smax, tn
	case ebpf.JmpJNE:
		// Only useful when one side is constant at a range endpoint.
		if src.IsConst() {
			v := src.ConstVal()
			if dst.UMin == v && dst.UMin < math.MaxUint64 {
				dst.UMin++
			}
			if dst.UMax == v && dst.UMax > 0 {
				dst.UMax--
			}
			if dst.SMin == int64(v) && dst.SMin < math.MaxInt64 {
				dst.SMin++
			}
			if dst.SMax == int64(v) && dst.SMax > math.MinInt64 {
				dst.SMax--
			}
		}
	case ebpf.JmpJGT:
		if src.UMin < math.MaxUint64 {
			dst.UMin = maxU(dst.UMin, src.UMin+1)
		}
		if dst.UMax > 0 {
			src.UMax = minU(src.UMax, dst.UMax-1)
		}
	case ebpf.JmpJGE:
		dst.UMin = maxU(dst.UMin, src.UMin)
		src.UMax = minU(src.UMax, dst.UMax)
	case ebpf.JmpJLT:
		if src.UMax > 0 {
			dst.UMax = minU(dst.UMax, src.UMax-1)
		}
		if dst.UMin < math.MaxUint64 {
			src.UMin = maxU(src.UMin, dst.UMin+1)
		}
	case ebpf.JmpJLE:
		dst.UMax = minU(dst.UMax, src.UMax)
		src.UMin = maxU(src.UMin, dst.UMin)
	case ebpf.JmpJSGT:
		if src.SMin < math.MaxInt64 {
			dst.SMin = maxS(dst.SMin, src.SMin+1)
		}
		if dst.SMax > math.MinInt64 {
			src.SMax = minS(src.SMax, dst.SMax-1)
		}
	case ebpf.JmpJSGE:
		dst.SMin = maxS(dst.SMin, src.SMin)
		src.SMax = minS(src.SMax, dst.SMax)
	case ebpf.JmpJSLT:
		if src.SMax > math.MinInt64 {
			dst.SMax = minS(dst.SMax, src.SMax-1)
		}
		if dst.SMin < math.MaxInt64 {
			src.SMin = maxS(src.SMin, dst.SMin+1)
		}
	case ebpf.JmpJSLE:
		dst.SMax = minS(dst.SMax, src.SMax)
		src.SMin = maxS(src.SMin, dst.SMin)
	}
}

// apply32 refines 32-bit views of both operands under "dst op src".
func apply32(d, s *reg32, op uint8) {
	switch op {
	case ebpf.JmpJEQ:
		umin := maxU32(d.UMin, s.UMin)
		umax := minU32(d.UMax, s.UMax)
		smin := maxS32(d.SMin, s.SMin)
		smax := minS32(d.SMax, s.SMax)
		tn := tnum.Intersect(d.Var, s.Var)
		d.UMin, d.UMax, d.SMin, d.SMax, d.Var = umin, umax, smin, smax, tn
		s.UMin, s.UMax, s.SMin, s.SMax, s.Var = umin, umax, smin, smax, tn
	case ebpf.JmpJNE:
		if s.Var.IsConst() {
			v := uint32(s.Var.Value)
			if d.UMin == v && d.UMin < math.MaxUint32 {
				d.UMin++
			}
			if d.UMax == v && d.UMax > 0 {
				d.UMax--
			}
			if d.SMin == int32(v) && d.SMin < math.MaxInt32 {
				d.SMin++
			}
			if d.SMax == int32(v) && d.SMax > math.MinInt32 {
				d.SMax--
			}
		}
	case ebpf.JmpJGT:
		if s.UMin < math.MaxUint32 {
			d.UMin = maxU32(d.UMin, s.UMin+1)
		}
		if d.UMax > 0 {
			s.UMax = minU32(s.UMax, d.UMax-1)
		}
	case ebpf.JmpJGE:
		d.UMin = maxU32(d.UMin, s.UMin)
		s.UMax = minU32(s.UMax, d.UMax)
	case ebpf.JmpJLT:
		if s.UMax > 0 {
			d.UMax = minU32(d.UMax, s.UMax-1)
		}
		if d.UMin < math.MaxUint32 {
			s.UMin = maxU32(s.UMin, d.UMin+1)
		}
	case ebpf.JmpJLE:
		d.UMax = minU32(d.UMax, s.UMax)
		s.UMin = maxU32(s.UMin, d.UMin)
	case ebpf.JmpJSGT:
		if s.SMin < math.MaxInt32 {
			d.SMin = maxS32(d.SMin, s.SMin+1)
		}
		if d.SMax > math.MinInt32 {
			s.SMax = minS32(s.SMax, d.SMax-1)
		}
	case ebpf.JmpJSGE:
		d.SMin = maxS32(d.SMin, s.SMin)
		s.SMax = minS32(s.SMax, d.SMax)
	case ebpf.JmpJSLT:
		if s.SMax > math.MinInt32 {
			d.SMax = minS32(d.SMax, s.SMax-1)
		}
		if d.SMin < math.MaxInt32 {
			s.SMin = maxS32(s.SMin, d.SMin+1)
		}
	case ebpf.JmpJSLE:
		d.SMax = minS32(d.SMax, s.SMax)
		s.SMin = maxS32(s.SMin, d.SMin)
	}
}

// writeBack32 merges refined 32-bit knowledge into the full register
// without touching the upper 32 bits (JMP32 only informs the low word).
func writeBack32(r *RegState, v reg32) {
	r.Var = r.Var.WithSubreg(v.Var)
	r.U32Min, r.U32Max = v.UMin, v.UMax
	r.S32Min, r.S32Max = v.SMin, v.SMax
	r.sync()
}
