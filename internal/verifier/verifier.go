package verifier

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"bcf/internal/ebpf"
	"bcf/internal/obs"
	"bcf/internal/tnum"
)

// CheckKind classifies the safety check that failed; BCF uses it to decide
// whether and how to refine.
type CheckKind uint8

// Check kinds.
const (
	CheckNone        CheckKind = iota
	CheckMapAccess             // map value load/store bounds
	CheckStackAccess           // stack load/store bounds
	CheckHelperSize            // helper memory-size argument bounds
	CheckHelperMem             // helper memory-pointer argument bounds
	CheckCtxAccess             // context access (not instrumented for refinement)
	CheckPktAccess             // packet data access bounds (XDP data/data_end)
	CheckRetRange              // program return-value range at exit (cgroup)
	CheckOther
)

func (k CheckKind) String() string {
	switch k {
	case CheckMapAccess:
		return "map-access"
	case CheckStackAccess:
		return "stack-access"
	case CheckHelperSize:
		return "helper-size"
	case CheckHelperMem:
		return "helper-mem"
	case CheckCtxAccess:
		return "ctx-access"
	case CheckPktAccess:
		return "pkt-access"
	case CheckRetRange:
		return "ret-range"
	case CheckOther:
		return "other"
	}
	return "none"
}

// Error is a verification failure. Cause, when set, carries the
// underlying refinement failure (proof rejected, solver timeout, session
// limit …) so structured error classes survive the verifier boundary;
// errors.Is / errors.As reach it through Unwrap.
type Error struct {
	InsnIdx int
	Kind    CheckKind
	Msg     string
	Cause   error
}

func (e *Error) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("insn %d: %s: %v", e.InsnIdx, e.Msg, e.Cause)
	}
	return fmt.Sprintf("insn %d: %s", e.InsnIdx, e.Msg)
}

func (e *Error) Unwrap() error { return e.Cause }

// pathNode is one step of the immutable per-path history. Each analyzed
// instruction appends a node; branch pushes share the prefix. BCF
// reconstructs the analysis path by walking parents.
type pathNode struct {
	parent *pathNode
	idx    int32
	taken  bool // meaningful for conditional jumps
	// entry points at the liveness flag of the pruning-table entry
	// recorded just before this instruction was analyzed (nil when none
	// was). A later path-conditional refinement retracts the entries
	// inside its track by setting the flags (see retractEntries).
	entry *atomic.Bool
}

// PathStep is one element of the reconstructed analysis path handed to
// the Refiner (oldest first).
type PathStep struct {
	Idx   int
	Taken bool
}

// reconstructPath materializes the node chain, oldest first.
func reconstructPath(n *pathNode) []PathStep {
	count := 0
	for p := n; p != nil; p = p.parent {
		count++
	}
	out := make([]PathStep, count)
	for p := n; p != nil; p = p.parent {
		count--
		out[count] = PathStep{Idx: int(p.idx), Taken: p.taken}
	}
	return out
}

// RefineRequest describes a failed check that BCF may repair. WantLo and
// WantHi give the unsigned range the target value (the scalar register's
// value, or the variable part of a pointer register's offset) must be
// proven to lie in for the check to pass.
type RefineRequest struct {
	Prog    *ebpf.Program
	State   *VState
	Path    []PathStep
	InsnIdx int
	Reg     ebpf.Reg
	Kind    CheckKind
	WantLo  uint64
	WantHi  uint64
}

// RefineResult carries the proven bounds to adopt. When Pruned is set the
// refiner instead proved the current path's constraints unsatisfiable:
// the verifier abandons the (infeasible) path rather than refining.
//
// TrackStart is the index into RefineRequest.Path of the first
// instruction the proof's symbolic track covers. The proof is valid for
// any execution that traverses Path[TrackStart:] — its variables are
// fresh at the anchor — but says nothing about executions that reach a
// mid-track instruction by a different route. The verifier uses it to
// retract the pruning-table entries the refinement invalidates; the zero
// value (anchor at the path start) is maximally conservative.
type RefineResult struct {
	Lo, Hi     uint64
	Pruned     bool
	TrackStart int
}

// errInfeasiblePath is the sentinel used internally when BCF proves the
// current analysis path unreachable; the walk treats it as path end.
var errInfeasiblePath = &Error{Kind: CheckNone, Msg: "path proven infeasible"}

// retractEntries kills the pruning-table entries recorded along the
// current path at positions after a refinement's track anchor. A granted
// refinement proves its condition only for executions traversing
// Path[anchor:], so an entry inside the track — whose continuation was
// vindicated by that proof — must not prune a state that reaches the
// same pc along a different history: the proof does not cover it, and
// pruning there once accepted a program with a concrete out-of-bounds
// read (fuzz-accept-safe regression). Entries at or before the anchor
// stay: the track's variables are fresh at the anchor, so the proof
// covers every execution their subtrees admit. node sits at position
// pathLen-1; flags are shared with forked siblings, and setting one is
// idempotent, so re-sweeping after a second refinement is harmless.
func retractEntries(node *pathNode, pathLen, anchor int) {
	for p, pos := node, pathLen-1; p != nil && pos > anchor; p, pos = p.parent, pos-1 {
		if p.entry != nil {
			p.entry.Store(true)
		}
	}
}

// Refiner is the hook through which proof-guided abstraction refinement is
// plugged into the verifier (implemented by internal/bcf). A nil Refiner
// yields the baseline in-tree behaviour: immediate rejection.
type Refiner interface {
	Refine(req *RefineRequest) (*RefineResult, error)
}

// Stats aggregates per-verification counters; the benchmark harness reads
// them to regenerate Table 3.
type Stats struct {
	InsnProcessed  int
	PathsExplored  int
	StatesPruned   int
	PeakStackDepth int
	Refinements    int // granted refinements
	RefineAttempts int // requests issued to the Refiner
}

// RegRange declares the fixpoint range of one register at a loop head.
type RegRange struct {
	Reg        ebpf.Reg
	UMin, UMax uint64
}

// LoopInvariant is a precomputed loop fixpoint supplied with the program
// (the §7 "embed precomputed fixpoints" extension): at the loop-head
// instruction, each listed register is widened to its declared range.
// The verifier validates the fixpoint in a single pass — entry states
// must lie within the declared ranges (else the load is rejected), and
// inductiveness follows from state pruning: the once-widened state
// subsumes every later arrival, so the loop body is analyzed once.
type LoopInvariant struct {
	Insn int
	Regs []RegRange
}

// Config controls a verification run.
type Config struct {
	// InsnLimit bounds total analyzed instructions (kernel: one million).
	InsnLimit int
	// Refiner enables BCF when non-nil.
	Refiner Refiner
	// Debug records a verifier log retrievable via Log().
	Debug bool
	// NoPruning disables state pruning (for ablation benchmarks).
	NoPruning bool
	// LoopInvariants supplies precomputed loop fixpoints (§7 extension).
	LoopInvariants []LoopInvariant
	// Observer, when non-nil, is invoked before every analyzed
	// instruction (differential soundness testing).
	Observer Observer
	// Sabotage deliberately weakens the verifier for oracle mutation
	// tests. Never set outside tests.
	Sabotage *Sabotage
	// Obs, when non-nil, receives the verifier's counters and the
	// per-run latency histogram. Nil costs only a nil check.
	Obs *obs.Registry
	// Trace, when non-nil, records a span per verification run and per
	// explored path, plus prune instants.
	Trace *obs.Tracer
	// ParallelPaths is the number of workers that explore pending branch
	// paths concurrently; values <= 1 select the sequential DFS (the
	// default). The accept/reject verdict and the reported Error are
	// deterministic at any worker count — the verifier reports the error
	// the sequential DFS would have hit first (see DESIGN.md, "Parallel
	// verification"). Exploration statistics (paths explored, states
	// pruned) may legitimately differ from the sequential run. When > 1,
	// the Observer (if any) must tolerate concurrent Step calls.
	ParallelPaths int
}

// DefaultInsnLimit mirrors the kernel's BPF_COMPLEXITY_LIMIT_INSNS.
const DefaultInsnLimit = 1_000_000

// Verifier analyzes one program. A Verifier is single-use: create a new
// one (or a new load session) for every Verify call.
type Verifier struct {
	prog *ebpf.Program
	cfg  Config

	// Counters are shared by every path worker when ParallelPaths > 1,
	// so they live as atomics; Stats() materializes a snapshot.
	insnProcessed  atomic.Int64
	pathsExplored  atomic.Int64
	statesPruned   atomic.Int64
	peakFrontier   atomic.Int64
	refinements    atomic.Int64
	refineAttempts atomic.Int64

	logMu sync.Mutex
	log   []string

	// explored is the pruning table, sharded per pc so concurrent
	// subsumption checks at different instructions never contend.
	explored []exploredShard
	// prunePoints is precomputed in New; walkers only ever read it.
	prunePoints []bool
	idGen       atomic.Uint32

	// budgetErr is the single instruction-budget rejection. Under
	// parallel exploration the budget trips at a timing-dependent pc, so
	// the error must not carry one; it is also an identity sentinel that
	// lets workers tell a budget stop apart from a real path error.
	budgetErr *Error
	budgetHit atomic.Bool

	// best is the winning candidate error so far: the one the sequential
	// DFS would have reached first (minimal pathOrder).
	best atomic.Pointer[candidate]

	// refineMu serializes Refiner calls across path workers: the BCF
	// session speaks a strictly alternating condition/proof conversation
	// with the loader, and the refiner's bookkeeping is unsynchronized.
	refineMu sync.Mutex
	// refineSiteHits guards against a Refiner that makes no progress.
	refineSiteHits map[int]int
}

// New prepares a verifier for prog.
func New(prog *ebpf.Program, cfg Config) *Verifier {
	if cfg.InsnLimit == 0 {
		cfg.InsnLimit = DefaultInsnLimit
	}
	v := &Verifier{
		prog:           prog,
		cfg:            cfg,
		explored:       make([]exploredShard, len(prog.Insns)),
		refineSiteHits: map[int]int{},
		budgetErr: &Error{InsnIdx: -1, Kind: CheckOther,
			Msg: fmt.Sprintf("BPF program is too large. Processed %d insn", cfg.InsnLimit)},
	}
	// Precomputed at construction: isPrunePoint used to build this
	// lazily from inside the walk loop, a data race once paths walk
	// concurrently.
	v.prunePoints = computePrunePoints(prog)
	return v
}

// Stats returns the counters of the last Verify run.
func (v *Verifier) Stats() Stats {
	return Stats{
		InsnProcessed:  int(v.insnProcessed.Load()),
		PathsExplored:  int(v.pathsExplored.Load()),
		StatesPruned:   int(v.statesPruned.Load()),
		PeakStackDepth: int(v.peakFrontier.Load()),
		Refinements:    int(v.refinements.Load()),
		RefineAttempts: int(v.refineAttempts.Load()),
	}
}

// Log returns the verifier log (Debug mode only).
func (v *Verifier) Log() []string {
	v.logMu.Lock()
	defer v.logMu.Unlock()
	return v.log
}

func (v *Verifier) logf(format string, args ...any) {
	if !v.cfg.Debug {
		return
	}
	line := fmt.Sprintf(format, args...)
	v.logMu.Lock()
	v.log = append(v.log, line)
	v.logMu.Unlock()
}

func (v *Verifier) newID() uint32 { return v.idGen.Add(1) }

// chargeInsn consumes one unit of the global instruction budget. The
// counter doubles as the InsnProcessed statistic: a failed charge is
// rolled back, so the budget is a hard cap and the statistic never
// exceeds InsnLimit at any ParallelPaths.
func (v *Verifier) chargeInsn() bool {
	if v.insnProcessed.Add(1) > int64(v.cfg.InsnLimit) {
		v.insnProcessed.Add(-1)
		v.budgetHit.Store(true)
		return false
	}
	return true
}

// pathDone converts the infeasible-path sentinel into a clean path end.
func pathDone(err error) error {
	if err == errInfeasiblePath {
		return nil
	}
	return err
}

type branchItem struct {
	st    *VState
	pc    int
	node  *pathNode
	obs   any        // observer token of the forking instruction
	order *pathOrder // DFS-order coordinate (see parallel.go)
}

// Verify runs the analysis and returns nil if the program is safe.
func (v *Verifier) Verify() error {
	var t0 time.Time
	if v.cfg.Obs != nil {
		t0 = time.Now()
	}
	sp := v.cfg.Trace.Start(obs.CatVerifier, "verify")
	err := v.verify()
	sp.End()
	if r := v.cfg.Obs; r != nil {
		st := v.Stats()
		r.StageHistogram(obs.MVerifySeconds).Since(t0)
		r.Counter(obs.MInsnsProcessed).Add(int64(st.InsnProcessed))
		r.Counter(obs.MPathsExplored).Add(int64(st.PathsExplored))
		r.Counter(obs.MStatesPruned).Add(int64(st.StatesPruned))
		if v.cfg.ParallelPaths > 1 {
			r.Gauge(obs.MVerifierWorkers).Set(int64(v.cfg.ParallelPaths))
		}
	}
	return err
}

func (v *Verifier) verify() error {
	if err := v.prog.Validate(); err != nil {
		return &Error{InsnIdx: 0, Kind: CheckOther, Msg: err.Error()}
	}
	root := branchItem{st: entryState(), pc: 0, node: nil, order: &pathOrder{}}
	if v.cfg.ParallelPaths > 1 {
		return v.verifyParallel(root)
	}
	stack := []branchItem{root}
	push := func(it branchItem) { stack = append(stack, it) }
	for len(stack) > 0 {
		if d := int64(len(stack)); d > v.peakFrontier.Load() {
			v.peakFrontier.Store(d)
		}
		item := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v.pathsExplored.Add(1)
		var err error
		if v.cfg.Trace != nil {
			psp := v.cfg.Trace.StartArgs(obs.CatVerifier, "path",
				map[string]any{"pc": item.pc})
			err = v.walk(item, push)
			psp.End()
		} else {
			err = v.walk(item, push)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// walk analyzes one path until exit, prune or error, handing the untaken
// sides of branches to push. Each pushed child is stamped with a
// pathOrder extending this walk's, so results stay in sequential DFS
// order however the frontier schedules them.
func (v *Verifier) walk(item branchItem, push func(branchItem)) error {
	st, pc, node, obsTok := item.st, item.pc, item.node, item.obs
	par := v.cfg.ParallelPaths > 1
	childSeq := int32(0)
	fork := func(it branchItem) {
		childSeq++
		it.order = &pathOrder{parent: item.order, depth: item.order.depth + 1, seq: childSeq}
		if par {
			// Subtree accounting for prune-entry eligibility (see
			// pruned): the child's subtree opens under this walk's.
			it.order.open.Store(1)
			item.order.open.Add(1)
		}
		push(it)
	}
	for {
		if !v.chargeInsn() {
			return v.budgetErr
		}
		if pc < 0 || pc >= len(v.prog.Insns) {
			return &Error{InsnIdx: pc, Kind: CheckOther, Msg: "fell off the end of the program"}
		}
		ins := v.prog.Insns[pc]
		if ins.IsPlaceholder() {
			return &Error{InsnIdx: pc, Kind: CheckOther, Msg: "jump into the middle of ld_imm64"}
		}
		// Precomputed loop fixpoints: widen before recording explored
		// states, so the widened state is the one future arrivals are
		// pruned against (which is exactly the inductiveness check).
		if len(v.cfg.LoopInvariants) > 0 {
			if err := v.applyInvariants(st, pc); err != nil {
				return err
			}
		}
		// Pruning at jump targets.
		var entryDead *atomic.Bool
		if !v.cfg.NoPruning && v.isPrunePoint(pc) {
			if par && v.outranked(item.order) {
				// A candidate error ordered before this path exists; the
				// sequential DFS would have stopped before walking further
				// here, so nothing this path does can matter.
				return nil
			}
			var hit bool
			hit, entryDead = v.pruned(pc, st, item.order)
			if hit {
				v.statesPruned.Add(1)
				v.logf("%d: pruned", pc)
				v.cfg.Trace.Instant(obs.CatVerifier, "prune", nil)
				return nil
			}
		}
		v.logf("%d: %s", pc, ins.String())
		node = &pathNode{parent: node, idx: int32(pc), entry: entryDead}
		if v.cfg.Observer != nil {
			obsTok = v.cfg.Observer.Step(obsTok, pc, st)
		}

		switch ins.Class() {
		case ebpf.ClassALU, ebpf.ClassALU64:
			if err := v.checkALU(st, pc, ins, node); err != nil {
				return pathDone(err)
			}
			pc++

		case ebpf.ClassLD:
			if !ins.IsLoadImm64() {
				return &Error{InsnIdx: pc, Kind: CheckOther, Msg: "unsupported ld mode"}
			}
			dst := &st.Regs[ins.Dst]
			if ins.Src == ebpf.PseudoMapFD {
				*dst = RegState{Type: ConstPtrToMap, MapIdx: int32(uint32(ins.Imm))}
				dst.zeroVar()
			} else {
				*dst = constScalar(uint64(ins.Imm))
			}
			pc += 2

		case ebpf.ClassLDX:
			if err := v.checkLoad(st, pc, ins, node); err != nil {
				return pathDone(err)
			}
			pc++

		case ebpf.ClassST, ebpf.ClassSTX:
			if err := v.checkStore(st, pc, ins, node); err != nil {
				return pathDone(err)
			}
			pc++

		case ebpf.ClassJMP, ebpf.ClassJMP32:
			op := ins.JmpOp()
			switch op {
			case ebpf.JmpEXIT:
				if err := v.checkExit(st, pc, node); err != nil {
					return pathDone(err)
				}
				v.logf("%d: exit, path ok", pc)
				return nil
			case ebpf.JmpJA:
				if ins.Class() == ebpf.ClassJMP32 {
					return &Error{InsnIdx: pc, Kind: CheckOther, Msg: "invalid jmp32 ja"}
				}
				pc += 1 + int(ins.Off)
				continue
			case ebpf.JmpCALL:
				if err := v.checkCall(st, pc, ins, node); err != nil {
					return pathDone(err)
				}
				pc++
				continue
			}
			next, err := v.checkCondJmp(st, pc, ins, node, obsTok, fork)
			if err != nil {
				return err
			}
			pc = next

		default:
			return &Error{InsnIdx: pc, Kind: CheckOther,
				Msg: fmt.Sprintf("unknown insn class %d", ins.Class())}
		}
	}
}

// checkExit validates the state at an exit instruction
// (check_return_code). Every program type requires R0 readable; cgroup
// programs additionally constrain the return value to [0, 1], with a
// failed range check instrumented for BCF refinement like any other
// bounds check: the refiner is asked to prove R0's value lies in the
// accepted range on this path.
func (v *Verifier) checkExit(st *VState, pc int, node *pathNode) error {
	for {
		r0 := &st.Regs[ebpf.R0]
		if r0.Type == NotInit {
			return &Error{InsnIdx: pc, Kind: CheckOther, Msg: "R0 !read_ok"}
		}
		if v.prog.Type != ebpf.ProgCgroupSkb {
			return nil
		}
		if r0.Type != Scalar {
			return &Error{InsnIdx: pc, Kind: CheckOther,
				Msg: "At program exit the register R0 must be a scalar value"}
		}
		if r0.UMax <= 1 {
			return nil
		}
		orig := &Error{InsnIdx: pc, Kind: CheckRetRange,
			Msg: fmt.Sprintf("At program exit the register R0 has value (umin=%d, umax=%d) should have been in [0, 1]",
				r0.UMin, r0.UMax)}
		if rerr := v.refine(st, pc, ebpf.R0, CheckRetRange, 0, 1, node, orig); rerr != nil {
			return rerr
		}
		// Refinement adopted: re-check the return range.
	}
}

// checkALU verifies one ALU instruction and applies its transfer function.
func (v *Verifier) checkALU(st *VState, pc int, ins ebpf.Instruction, node *pathNode) error {
	is32 := ins.Class() == ebpf.ClassALU
	op := ins.AluOp()
	dst := &st.Regs[ins.Dst]

	if ins.Dst == ebpf.R10 {
		return &Error{InsnIdx: pc, Kind: CheckOther, Msg: "frame pointer is read only"}
	}

	// Source operand.
	var src RegState
	var srcReg *RegState
	if ins.UsesSrcReg() && op != ebpf.AluNEG && op != ebpf.AluEND {
		srcReg = &st.Regs[ins.Src]
		if srcReg.Type == NotInit {
			return &Error{InsnIdx: pc, Kind: CheckOther,
				Msg: fmt.Sprintf("R%d !read_ok", ins.Src)}
		}
		src = *srcReg
	} else {
		src = constScalar(uint64(ins.Imm))
	}

	switch op {
	case ebpf.AluMOV:
		if is32 {
			if src.Type.IsPtr() {
				return &Error{InsnIdx: pc, Kind: CheckOther,
					Msg: fmt.Sprintf("R%d partial copy of pointer", ins.Src)}
			}
			*dst = src
			dst.ID = 0
			dst.zext32()
		} else {
			if ins.UsesSrcReg() && srcReg.Type == Scalar {
				// Track scalar aliases so branch refinements propagate
				// (find_equal_scalars).
				if srcReg.ID == 0 {
					srcReg.ID = v.newID()
				}
				src = *srcReg
			}
			*dst = src
		}
		return nil

	case ebpf.AluNEG:
		if dst.Type != Scalar {
			return &Error{InsnIdx: pc, Kind: CheckOther, Msg: "R%d pointer arithmetic prohibited"}
		}
		if dst.IsConst() {
			val := dst.ConstVal()
			if is32 {
				*dst = constScalar(uint64(uint32(-int32(uint32(val)))))
			} else {
				*dst = constScalar(-val)
			}
		} else {
			dst.markUnknown()
			if is32 {
				dst.Var = tnum.Unknown.Cast(4)
				dst.UMax = math.MaxUint32
				dst.SMin, dst.SMax = 0, math.MaxUint32
				dst.sync()
			}
		}
		return nil

	case ebpf.AluEND:
		if dst.Type != Scalar {
			return &Error{InsnIdx: pc, Kind: CheckOther, Msg: "byteswap on pointer prohibited"}
		}
		dst.markUnknown()
		dst.ID = 0
		return nil
	}

	if dst.Type == NotInit {
		return &Error{InsnIdx: pc, Kind: CheckOther,
			Msg: fmt.Sprintf("R%d !read_ok", ins.Dst)}
	}

	// Pointer arithmetic.
	dstPtr, srcPtr := dst.Type.IsPtr(), src.Type.IsPtr()
	if dstPtr || srcPtr {
		if is32 {
			return &Error{InsnIdx: pc, Kind: CheckOther, Msg: "32-bit pointer arithmetic prohibited"}
		}
		return v.adjustPtr(st, pc, ins, dst, &src)
	}

	// Scalar ALU.
	if (op == ebpf.AluDIV || op == ebpf.AluMOD) && !ins.UsesSrcReg() && ins.Imm == 0 {
		return &Error{InsnIdx: pc, Kind: CheckOther, Msg: "division by zero"}
	}
	aluScalar(dst, &src, op, is32)
	if !is32 && op == ebpf.AluADD {
		v.cfg.Sabotage.collapseAdd(dst)
	}
	return nil
}

// adjustPtr implements pointer +/- scalar arithmetic
// (adjust_ptr_min_max_vals).
func (v *Verifier) adjustPtr(st *VState, pc int, ins ebpf.Instruction, dst *RegState, src *RegState) error {
	op := ins.AluOp()
	if op != ebpf.AluADD && op != ebpf.AluSUB {
		return &Error{InsnIdx: pc, Kind: CheckOther,
			Msg: fmt.Sprintf("R%d pointer arithmetic with %s operator prohibited", ins.Dst, ebpf.AluOpName(op))}
	}
	var ptr, scalar *RegState
	switch {
	case dst.Type.IsPtr() && src.Type.IsPtr():
		return &Error{InsnIdx: pc, Kind: CheckOther, Msg: "R combined pointer arithmetic prohibited"}
	case dst.Type.IsPtr():
		ptr, scalar = dst, src
	default:
		// scalar += ptr is allowed for ADD only.
		if op == ebpf.AluSUB {
			return &Error{InsnIdx: pc, Kind: CheckOther, Msg: "scalar -= pointer prohibited"}
		}
		ptr, scalar = src, dst
	}
	if ptr.Type == PtrToMapValueOrNull {
		return &Error{InsnIdx: pc, Kind: CheckOther,
			Msg: "pointer arithmetic on map_value_or_null prohibited, null-check it first"}
	}
	if ptr.Type == ConstPtrToMap {
		return &Error{InsnIdx: pc, Kind: CheckOther, Msg: "pointer arithmetic on map_ptr prohibited"}
	}
	if ptr.Type == PtrToPacketEnd {
		return &Error{InsnIdx: pc, Kind: CheckOther, Msg: "pointer arithmetic on pkt_end prohibited"}
	}

	out := *ptr
	out.ID = 0
	if scalar.IsConst() {
		// Constant moves the fixed offset.
		delta := int64(scalar.ConstVal())
		if op == ebpf.AluSUB {
			delta = -delta
		}
		newOff := int64(out.Off) + delta
		if newOff != int64(int32(newOff)) {
			return &Error{InsnIdx: pc, Kind: CheckOther, Msg: "pointer offset out of range"}
		}
		out.Off = int32(newOff)
	} else if op == ebpf.AluADD {
		tmp := out
		scalarAdd(&tmp, scalar)
		tmp.sync()
		out.Var = tmp.Var
		out.UMin, out.UMax = tmp.UMin, tmp.UMax
		out.SMin, out.SMax = tmp.SMin, tmp.SMax
		out.U32Min, out.U32Max = tmp.U32Min, tmp.U32Max
		out.S32Min, out.S32Max = tmp.S32Min, tmp.S32Max
	} else {
		// Subtracting an unknown scalar from a pointer: the kernel keeps
		// the pointer but with an unknown variable offset.
		tmp := out
		scalarSub(&tmp, scalar)
		tmp.sync()
		out.Var = tmp.Var
		out.UMin, out.UMax = tmp.UMin, tmp.UMax
		out.SMin, out.SMax = tmp.SMin, tmp.SMax
		out.U32Min, out.U32Max = tmp.U32Min, tmp.U32Max
		out.S32Min, out.S32Max = tmp.S32Min, tmp.S32Max
	}
	*dst = out
	return nil
}

// applyRefinedRange adopts a proof-checked refinement of the target
// register's value (or pointer variable offset).
func applyRefinedRange(reg *RegState, lo, hi uint64) {
	reg.UMin = maxU(reg.UMin, lo)
	reg.UMax = minU(reg.UMax, hi)
	if reg.UMin > reg.UMax {
		// The refinement proved a range disjoint from the current one;
		// the path is infeasible. Collapse to the proven range.
		reg.UMin, reg.UMax = lo, hi
		reg.Var = tnum.Range(lo, hi)
	}
	reg.SMin, reg.SMax = math.MinInt64, math.MaxInt64
	if reg.UMax <= uint64(math.MaxInt64) {
		reg.SMin, reg.SMax = int64(reg.UMin), int64(reg.UMax)
	}
	reg.markRangesUnknown32()
	reg.sync()
}

// refine consults the Refiner for a failed check; it returns nil if the
// refinement succeeded and analysis may retry the instruction.
// A request with wantLo > wantHi asks the refiner to prove the current
// path infeasible instead (no variable range can make the check pass).
func (v *Verifier) refine(st *VState, pc int, regno ebpf.Reg, kind CheckKind,
	wantLo, wantHi uint64, node *pathNode, orig error) error {
	if v.cfg.Refiner == nil {
		return orig
	}
	// One refinement conversation at a time: the BCF session's
	// condition/proof channel protocol is single-conversation, and the
	// refiner's own accounting is unsynchronized. Path workers queue here.
	v.refineMu.Lock()
	defer v.refineMu.Unlock()
	// Loops legitimately re-refine the same instruction on every
	// iteration (§6.3: up to 16k refinements per program), so there is no
	// per-site cap; termination is ensured by the progress check below
	// and by the global instruction budget.
	v.refineSiteHits[pc]++
	v.refineAttempts.Add(1)
	req := &RefineRequest{
		Prog:    v.prog,
		State:   st,
		Path:    reconstructPath(node),
		InsnIdx: pc,
		Reg:     regno,
		Kind:    kind,
		WantLo:  wantLo,
		WantHi:  wantHi,
	}
	res, err := v.cfg.Refiner.Refine(req)
	if err == nil {
		// The grant is conditional on the branches inside the proof's
		// track: this path's earlier "explored without error" claims no
		// longer transfer to states that arrive mid-track by a different
		// route. Retract those pruning entries before using the result.
		retractEntries(node, len(req.Path), res.TrackStart)
	}
	if err != nil {
		v.logf("%d: refinement failed: %v", pc, err)
		// Surface the refinement failure as the cause of the original
		// safety error: the rejection reason stays the failed check, but
		// the class of the failure (proof rejected, timeout, protocol)
		// remains reachable for errors.Is and eval bucketing.
		if oe, ok := orig.(*Error); ok && oe.Cause == nil {
			return &Error{InsnIdx: oe.InsnIdx, Kind: oe.Kind, Msg: oe.Msg, Cause: err}
		}
		return orig
	}
	if res.Pruned {
		v.refinements.Add(1)
		v.logf("%d: path proven infeasible, pruned", pc)
		return errInfeasiblePath
	}
	reg := &st.Regs[regno]
	before := *reg
	applyRefinedRange(reg, res.Lo, res.Hi)
	if before == *reg {
		// No progress; avoid looping forever.
		return orig
	}
	v.refinements.Add(1)
	v.logf("%d: refined R%d to [%d, %d]", pc, regno, res.Lo, res.Hi)
	return nil
}
