package verifier

import (
	"fmt"

	"bcf/internal/ebpf"
)

// checkCondJmp analyzes a conditional jump: it statically resolves the
// branch when the abstraction allows, otherwise forks the state, refines
// both sides with the branch condition, and hands the taken side to push
// (the walk's fork callback, which stamps the child's DFS order before
// queuing it on the frontier). It returns the next pc for the current
// walk. The pushed side gets a cloned state and its own pathNode, so the
// two sides share nothing mutable even when walked by different workers.
func (v *Verifier) checkCondJmp(st *VState, pc int, ins ebpf.Instruction, node *pathNode, obsTok any, push func(branchItem)) (int, error) {
	is32 := ins.Class() == ebpf.ClassJMP32
	op := ins.JmpOp()
	dst := &st.Regs[ins.Dst]
	if dst.Type == NotInit {
		return 0, &Error{InsnIdx: pc, Kind: CheckOther, Msg: fmt.Sprintf("R%d !read_ok", ins.Dst)}
	}
	var srcReg *RegState
	srcImm := constScalar(uint64(ins.Imm))
	if ins.UsesSrcReg() {
		srcReg = &st.Regs[ins.Src]
		if srcReg.Type == NotInit {
			return 0, &Error{InsnIdx: pc, Kind: CheckOther, Msg: fmt.Sprintf("R%d !read_ok", ins.Src)}
		}
	}
	target := pc + 1 + int(ins.Off)

	// Null-pointer check pattern: `if rX ==/!= 0` on map_value_or_null.
	if !is32 && srcReg == nil && ins.Imm == 0 &&
		(op == ebpf.JmpJEQ || op == ebpf.JmpJNE) &&
		dst.Type == PtrToMapValueOrNull {
		other := st.clone()
		// Taken edge condition: dst == 0 for JEQ, dst != 0 for JNE.
		takenNull := op == ebpf.JmpJEQ
		markPtrOrNull(other, dst.ID, takenNull)
		markPtrOrNull(st, dst.ID, !takenNull)
		push(branchItem{st: other, pc: target,
			node: &pathNode{parent: node.parent, idx: int32(pc), taken: true, entry: node.entry}, obs: obsTok})
		node.taken = false
		return pc + 1, nil
	}

	// Comparisons against a definitely-non-null pointer.
	if dst.Type.IsPtr() && dst.Type != PtrToMapValueOrNull && srcReg == nil && ins.Imm == 0 &&
		(op == ebpf.JmpJEQ || op == ebpf.JmpJNE) {
		if op == ebpf.JmpJNE { // always taken
			node.taken = true
			return target, nil
		}
		node.taken = false // JEQ 0 never taken
		return pc + 1, nil
	}

	// Pointer comparisons otherwise teach us nothing but are permitted
	// between pointers; scalar/pointer mixes are rejected as the kernel
	// does (pointer leak concerns aside, they are meaningless).
	src := &srcImm
	if srcReg != nil {
		src = srcReg
	}
	if dst.Type.IsPtr() || src.Type.IsPtr() {
		if dst.Type.IsPtr() && srcReg != nil && srcReg.Type.IsPtr() {
			other := st.clone()
			if !is32 {
				learnPktRange(st, other, dst, srcReg, op)
			}
			push(branchItem{st: other, pc: target,
				node: &pathNode{parent: node.parent, idx: int32(pc), taken: true, entry: node.entry}, obs: obsTok})
			node.taken = false
			return pc + 1, nil
		}
		return 0, &Error{InsnIdx: pc, Kind: CheckOther,
			Msg: fmt.Sprintf("R%d comparison of pointer and scalar prohibited", ins.Dst)}
	}

	// Scalar comparison: try to resolve statically.
	switch isBranchTaken(dst, src, op, is32) {
	case branchAlways:
		node.taken = true
		return target, nil
	case branchNever:
		node.taken = false
		return pc + 1, nil
	}

	// Fork. Refine the taken copy under the condition and the fallthrough
	// under its negation, then propagate to linked scalars.
	other := st.clone()
	oDst := &other.Regs[ins.Dst]
	oSrc := &srcImm
	fSrc := &srcImm
	if srcReg != nil {
		oSrc = &other.Regs[ins.Src]
		fSrc = srcReg
	}
	regSetMinMax(oDst, oSrc, op, true, is32)
	syncLinked(other, oDst.ID, oDst)
	if srcReg != nil {
		syncLinked(other, oSrc.ID, oSrc)
	}
	regSetMinMax(dst, fSrc, op, false, is32)
	syncLinked(st, dst.ID, dst)
	if srcReg != nil {
		syncLinked(st, fSrc.ID, fSrc)
	}
	push(branchItem{st: other, pc: target,
		node: &pathNode{parent: node.parent, idx: int32(pc), taken: true, entry: node.entry}, obs: obsTok})
	node.taken = false
	return pc + 1, nil
}

// learnPktRange is the analog of the kernel's find_good_pkt_pointers: a
// 64-bit comparison between a packet pointer pkt+N and pkt_end proves, on
// the edge where pkt+N <=/< pkt_end holds, that at least N bytes past
// ctx->data are readable. fall and taken are the two successor states of
// the fork (the comparison instruction's fall-through and jump-target
// edges). N is bounded below by the pointer's fixed offset plus the
// unsigned minimum of its variable part, and learning is skipped past
// maxPacketOff — the kernel's overflow guard.
func learnPktRange(fall, taken *VState, dst, src *RegState, op uint8) {
	pkt, end := dst, src
	swapped := false
	if dst.Type == PtrToPacketEnd && src.Type == PtrToPacket {
		pkt, end, swapped = src, dst, true
	}
	if pkt.Type != PtrToPacket || end.Type != PtrToPacketEnd {
		return
	}
	if pkt.Off < 0 || pkt.UMin > maxPacketOff {
		return
	}
	n := int64(pkt.Off) + int64(pkt.UMin)
	if n <= 0 || n > maxPacketOff {
		return
	}
	// Select the edge on which pkt+N <= pkt_end is proven. With operands
	// in program order (pkt OP end): JGT/JGE fail on it (fall-through),
	// JLT/JLE succeed on it (taken). With the operands swapped
	// (end OP pkt) the edges mirror. The strict comparisons prove the
	// stronger pkt+N < pkt_end; adopting range N for both is the
	// conservative sound choice.
	var good *VState
	switch op {
	case ebpf.JmpJGT, ebpf.JmpJGE:
		if swapped {
			good = taken
		} else {
			good = fall
		}
	case ebpf.JmpJLT, ebpf.JmpJLE:
		if swapped {
			good = fall
		} else {
			good = taken
		}
	default:
		return
	}
	if uint32(n) > good.PktRange {
		good.PktRange = uint32(n)
	}
}

// markPtrOrNull resolves every register and spill slot carrying the given
// or-null identity to either a known-zero scalar or a real map value
// pointer (mark_ptr_or_null_regs).
func markPtrOrNull(st *VState, id uint32, isNull bool) {
	fix := func(r *RegState) {
		if r.Type != PtrToMapValueOrNull || r.ID != id {
			return
		}
		if isNull {
			*r = constScalar(0)
		} else {
			r.Type = PtrToMapValue
			r.ID = 0
		}
	}
	for i := range st.Regs {
		fix(&st.Regs[i])
	}
	for i := range st.Stack {
		if st.Stack[i].Kind == SlotSpill {
			fix(&st.Stack[i].Spill)
		}
	}
}

// syncLinked propagates refined bounds to every scalar sharing the
// identity (find_equal_scalars / sync_linked_regs). Only 64-bit copies
// create identities, so the full state transfers.
func syncLinked(st *VState, id uint32, src *RegState) {
	if id == 0 || src.Type != Scalar {
		return
	}
	for i := range st.Regs {
		r := &st.Regs[i]
		if r != src && r.Type == Scalar && r.ID == id {
			*r = *src
		}
	}
	for i := range st.Stack {
		if st.Stack[i].Kind == SlotSpill {
			r := &st.Stack[i].Spill
			if r != src && r.Type == Scalar && r.ID == id {
				*r = *src
			}
		}
	}
}
