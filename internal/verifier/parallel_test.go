package verifier

import (
	"errors"
	"strings"
	"testing"

	"bcf/internal/corpus"
	"bcf/internal/ebpf"
)

// verifyAt runs one verification with the given worker count.
func verifyAt(p *ebpf.Program, workers int, limit int) (error, Stats) {
	v := New(p, Config{ParallelPaths: workers, InsnLimit: limit})
	err := v.Verify()
	return err, v.Stats()
}

// asVerifierError unwraps err into the verifier's structured Error.
func asVerifierError(t *testing.T, err error) *Error {
	t.Helper()
	var ve *Error
	if !errors.As(err, &ve) {
		t.Fatalf("not a verifier.Error: %v", err)
	}
	return ve
}

// sameError fails the test unless both errors are nil or both carry the
// same (InsnIdx, Kind, Msg).
func sameError(t *testing.T, want, got error, ctx string) {
	t.Helper()
	if (want == nil) != (got == nil) {
		t.Fatalf("%s: verdict mismatch: want err=%v, got err=%v", ctx, want, got)
	}
	if want == nil {
		return
	}
	w, g := asVerifierError(t, want), asVerifierError(t, got)
	if w.InsnIdx != g.InsnIdx || w.Kind != g.Kind || w.Msg != g.Msg {
		t.Fatalf("%s: error mismatch:\nwant insn %d kind %v msg %q\ngot  insn %d kind %v msg %q",
			ctx, w.InsnIdx, w.Kind, w.Msg, g.InsnIdx, g.Kind, g.Msg)
	}
}

// TestSharedFieldsPrecomputed pins the shared-state construction fixes:
// everything the walk loop reads concurrently must exist before the
// first walk starts, not be initialized lazily from inside it.
func TestSharedFieldsPrecomputed(t *testing.T) {
	p := mapProg(`
		r2 = *(u32 *)(r1 +0)
		if r2 == 0 goto out
		r0 = 1
		exit
	out:
		r0 = 0
		exit
	`)
	v := New(p, Config{})
	if v.prunePoints == nil {
		t.Fatal("prunePoints not precomputed in New")
	}
	if len(v.prunePoints) != len(p.Insns) {
		t.Fatalf("prunePoints sized %d, want %d", len(v.prunePoints), len(p.Insns))
	}
	if len(v.explored) != len(p.Insns) {
		t.Fatalf("explored table sized %d, want one shard per insn (%d)", len(v.explored), len(p.Insns))
	}
	if v.budgetErr == nil {
		t.Fatal("budget error not preallocated in New")
	}
	// The bitmap must match what the old lazy builder produced: the
	// branch target and the fallthrough are prune points.
	if !v.prunePoints[2] || !v.prunePoints[4] {
		t.Fatalf("prune points wrong: %v", v.prunePoints)
	}
}

// TestParallelInsnLimitHardCap pins that the instruction budget is a
// hard global cap at any worker count: InsnProcessed never exceeds the
// limit and the budget rejection is identical everywhere.
func TestParallelInsnLimitHardCap(t *testing.T) {
	// r0 differs on every iteration, defeating pruning, so the analysis
	// runs until the budget is exhausted (same fixture as TestInsnLimit).
	loop := mapProg(`
		r6 = r1
		r0 = 0
	loop:
		r0 += 1
		r2 = *(u32 *)(r6 +0)
		if r2 != 0 goto loop
		exit
	`)
	const limit = 1000
	want, wantStats := verifyAt(loop, 1, limit)
	if want == nil || !strings.Contains(want.Error(), "too large") {
		t.Fatalf("expected insn-limit rejection, got %v", want)
	}
	if wantStats.InsnProcessed > limit {
		t.Fatalf("sequential InsnProcessed %d exceeds limit %d", wantStats.InsnProcessed, limit)
	}
	for _, workers := range []int{2, 8} {
		for rep := 0; rep < 3; rep++ {
			got, st := verifyAt(loop, workers, limit)
			sameError(t, want, got, "insn limit")
			if st.InsnProcessed > limit {
				t.Fatalf("workers=%d: InsnProcessed %d exceeds limit %d", workers, st.InsnProcessed, limit)
			}
		}
	}
	// Also on a wide frontier, where many workers race the last insns of
	// the budget.
	wide := corpus.ParallelStress(9, 8, 0)
	seqErr, seqStats := verifyAt(wide, 1, 2000)
	if seqErr == nil || !strings.Contains(seqErr.Error(), "too large") {
		t.Fatalf("expected insn-limit rejection on the wide program, got %v", seqErr)
	}
	if seqStats.InsnProcessed > 2000 {
		t.Fatalf("sequential InsnProcessed %d exceeds limit", seqStats.InsnProcessed)
	}
	for _, workers := range []int{2, 8} {
		got, st := verifyAt(wide, workers, 2000)
		sameError(t, seqErr, got, "wide insn limit")
		if st.InsnProcessed > 2000 {
			t.Fatalf("workers=%d: InsnProcessed %d exceeds limit", workers, st.InsnProcessed)
		}
	}
}

// TestParallelErrorDeterminism is the regression test for first-error
// nondeterminism: a program with two failing paths must report the
// identical Error (InsnIdx, Kind, Msg) at every worker count — the one
// the sequential DFS hits first.
func TestParallelErrorDeterminism(t *testing.T) {
	twoFailing := mapProg(`
		r2 = *(u32 *)(r1 +0)
		if r2 == 0 goto other
		r3 = r2
		r3 &= 7
		r0 = *(u64 *)(r10 -520)
		exit
	other:
		r4 = r2
		r4 &= 15
		r0 = *(u64 *)(r10 -600)
		exit
	`)
	want, _ := verifyAt(twoFailing, 1, 0)
	if want == nil {
		t.Fatal("expected rejection")
	}
	// The fallthrough is walked first sequentially, so its error wins.
	if ve := asVerifierError(t, want); !strings.Contains(ve.Msg, "-520") {
		t.Fatalf("sequential DFS should report the fallthrough error, got %v", want)
	}
	for _, workers := range []int{1, 2, 8} {
		for rep := 0; rep < 5; rep++ {
			got, _ := verifyAt(twoFailing, workers, 0)
			sameError(t, want, got, "two failing paths")
		}
	}
	// A harder variant: many failing paths buried in a wide fan-out, so
	// parallel workers genuinely reach the "wrong" errors first.
	wide := corpus.ParallelStress(8, 4, 3)
	wideWant, _ := verifyAt(wide, 1, 0)
	if wideWant == nil {
		t.Fatal("expected rejection from the faulty stress program")
	}
	for _, workers := range []int{2, 8} {
		for rep := 0; rep < 5; rep++ {
			got, _ := verifyAt(wide, workers, 0)
			sameError(t, wideWant, got, "wide fan-out faults")
		}
	}
}

// TestParallelFrontierStress drives a wide branch fan-out (2^10 mutually
// incomparable paths, so the prune table records states at every rung
// without ever firing) through many workers. Run under -race this is the
// frontier/prune-table/stats regression test for the shared-state fixes.
func TestParallelFrontierStress(t *testing.T) {
	prog := corpus.ParallelStress(10, 16, 0)
	wantErr, wantStats := verifyAt(prog, 1, 0)
	if wantErr != nil {
		t.Fatalf("stress program should verify: %v", wantErr)
	}
	for _, workers := range []int{2, 4, 8} {
		got, st := verifyAt(prog, workers, 0)
		if got != nil {
			t.Fatalf("workers=%d: %v", workers, got)
		}
		// Pruning never fires here, so exploration work is identical in
		// any schedule: a cheap full-stats determinism check.
		if st.InsnProcessed != wantStats.InsnProcessed || st.PathsExplored != wantStats.PathsExplored ||
			st.StatesPruned != wantStats.StatesPruned {
			t.Fatalf("workers=%d: stats diverged: want %+v, got %+v", workers, wantStats, st)
		}
	}
	// And a prune-heavy shape: a long diamond ladder whose states do
	// subsume, stressing the order-gated visibility rule.
	ladder := mapProg(`
		r6 = r1
		r0 = 0
	` + strings.Repeat(`
		r2 = *(u32 *)(r6 +0)
		if r2 == 0 goto +1
		r0 += 0
	`, 24) + `
		exit
	`)
	seqErr, _ := verifyAt(ladder, 1, 0)
	if seqErr != nil {
		t.Fatalf("ladder should verify: %v", seqErr)
	}
	for _, workers := range []int{2, 8} {
		for rep := 0; rep < 3; rep++ {
			got, st := verifyAt(ladder, workers, 0)
			if got != nil {
				t.Fatalf("workers=%d: %v", workers, got)
			}
			if st.StatesPruned == 0 {
				t.Fatalf("workers=%d: expected pruning on the ladder", workers)
			}
		}
	}
}

// TestParallelCorpusDeterminism runs the whole embedded corpus through
// the verifier (no BCF) and requires byte-identical verdicts and error
// identity between ParallelPaths=1 and N, plus a full-stats match
// between repeated sequential runs (the legacy behaviour is still
// exactly deterministic).
func TestParallelCorpusDeterminism(t *testing.T) {
	const limit = 4000 // corpusInsnLimit: keeps the F6 loop family quick
	for _, e := range corpus.Generate() {
		base, baseStats := verifyAt(e.Prog, 1, limit)
		again, againStats := verifyAt(e.Prog, 1, limit)
		sameError(t, base, again, e.Prog.Name+" (sequential rerun)")
		if baseStats != againStats {
			t.Fatalf("%s: sequential stats not reproducible: %+v vs %+v", e.Prog.Name, baseStats, againStats)
		}
		for _, workers := range []int{2, 8} {
			got, st := verifyAt(e.Prog, workers, limit)
			sameError(t, base, got, e.Prog.Name)
			if st.InsnProcessed > limit {
				t.Fatalf("%s: workers=%d InsnProcessed %d exceeds limit", e.Prog.Name, workers, st.InsnProcessed)
			}
		}
	}
}

// TestParallelAcceptedSemantics pins accepted-state semantics on the
// handcrafted accept/reject fixtures: a sample of the unit-test programs
// must keep their verdicts at every worker count.
func TestParallelAcceptedSemantics(t *testing.T) {
	accepts := []*ebpf.Program{
		mapProg(`
			r0 = 0
			exit
		`),
		mapProg(`
			r6 = *(u32 *)(r1 +0)
		`+lookupPrologue+`
			r6 &= 7
			r1 = r0
			r1 += r6
			r0 = *(u8 *)(r1 +0)
			exit
		`+lookupEpilogue, testMap16),
	}
	rejects := []*ebpf.Program{
		mapProg(`
			exit
		`),
		mapProg(`
			r6 = *(u32 *)(r1 +0)
		`+lookupPrologue+`
			r1 = r0
			r1 += r6
			r0 = *(u8 *)(r1 +0)
			exit
		`+lookupEpilogue, testMap16),
	}
	for _, p := range accepts {
		want, _ := verifyAt(p, 1, 0)
		if want != nil {
			t.Fatalf("fixture should accept: %v", want)
		}
		for _, workers := range []int{2, 8} {
			got, _ := verifyAt(p, workers, 0)
			if got != nil {
				t.Fatalf("workers=%d rejected an accepted fixture: %v", workers, got)
			}
		}
	}
	for _, p := range rejects {
		want, _ := verifyAt(p, 1, 0)
		if want == nil {
			t.Fatal("fixture should reject")
		}
		for _, workers := range []int{2, 8} {
			got, _ := verifyAt(p, workers, 0)
			sameError(t, want, got, "reject fixture")
		}
	}
}

// TestOrderBefore exercises the DFS-order comparison directly.
func TestOrderBefore(t *testing.T) {
	root := &pathOrder{}
	child := func(p *pathOrder, seq int32) *pathOrder {
		return &pathOrder{parent: p, depth: p.depth + 1, seq: seq}
	}
	c1, c2 := child(root, 1), child(root, 2)
	g1 := child(c2, 1)
	cases := []struct {
		a, b *pathOrder
		want bool
		name string
	}{
		{root, root, true, "reflexive"},
		{root, c1, true, "ancestor first"},
		{c1, root, false, "descendant later"},
		{c2, c1, true, "later-pushed sibling pops first"},
		{c1, c2, false, "earlier-pushed sibling waits"},
		{g1, c1, true, "whole later-pushed subtree precedes earlier sibling"},
		{c1, g1, false, "earlier sibling after the whole subtree"},
		{c2, g1, true, "parent before its own child"},
		{g1, c2, false, "child after its parent"},
	}
	for _, c := range cases {
		if got := orderBefore(c.a, c.b); got != c.want {
			t.Errorf("%s: orderBefore = %v, want %v", c.name, got, c.want)
		}
	}
}
