package verifier

import (
	"fmt"

	"bcf/internal/ebpf"
	"bcf/internal/tnum"
)

// maxPacketOff mirrors the kernel's MAX_PACKET_OFF (0xffff): packet
// offsets beyond it can never be proven in range, which keeps all
// packet-bound arithmetic overflow-free.
const maxPacketOff = 0xffff

// checkLoad verifies an LDX instruction and models its effect.
func (v *Verifier) checkLoad(st *VState, pc int, ins ebpf.Instruction, node *pathNode) error {
	src := &st.Regs[ins.Src]
	if src.Type == NotInit {
		return &Error{InsnIdx: pc, Kind: CheckOther, Msg: fmt.Sprintf("R%d !read_ok", ins.Src)}
	}
	size := ins.LoadSize()
	if err := v.checkMemAccess(st, pc, ins.Src, ins.Off, size, false, node); err != nil {
		return err
	}
	dst := &st.Regs[ins.Dst]
	switch src.Type {
	case PtrToStack:
		*dst = v.readStack(st, src, ins.Off, size)
	case PtrToCtx:
		if pt, ok := ctxPacketField(v.prog.Type, src, ins.Off, size); ok {
			*dst = RegState{Type: pt}
			dst.zeroVar()
		} else {
			*dst = loadedScalar(size)
		}
	default:
		*dst = loadedScalar(size)
	}
	return nil
}

// ctxPacketField reports whether a context load yields a packet pointer:
// under XDP, the 4-byte data and data_end fields of struct xdp_md
// (offsets 0 and 4) load as pkt / pkt_end pointers rather than scalars
// (the kernel's convert_ctx_access for xdp_md).
func ctxPacketField(t ebpf.ProgType, reg *RegState, off int16, size int) (RegType, bool) {
	if t != ebpf.ProgXDP || size != 4 || !reg.Var.IsConst() {
		return 0, false
	}
	switch int64(reg.Off) + int64(off) + int64(reg.Var.Value) {
	case 0:
		return PtrToPacket, true
	case 4:
		return PtrToPacketEnd, true
	}
	return 0, false
}

// loadedScalar is the abstract value of a size-byte memory load.
func loadedScalar(size int) RegState {
	r := unknownScalar()
	if size < 8 {
		hi := uint64(1)<<(size*8) - 1
		r.UMax = hi
		r.SMin, r.SMax = 0, int64(hi)
		r.Var = tnum.Range(0, hi)
		r.sync()
	}
	return r
}

// checkStore verifies ST/STX instructions and models their effect.
func (v *Verifier) checkStore(st *VState, pc int, ins ebpf.Instruction, node *pathNode) error {
	dst := &st.Regs[ins.Dst]
	if dst.Type == NotInit {
		return &Error{InsnIdx: pc, Kind: CheckOther, Msg: fmt.Sprintf("R%d !read_ok", ins.Dst)}
	}
	size := ins.LoadSize()
	atomic := ins.Class() == ebpf.ClassSTX && ins.Mode() == ebpf.ModeATOMIC
	var srcReg *RegState
	if ins.Class() == ebpf.ClassSTX {
		srcReg = &st.Regs[ins.Src]
		if srcReg.Type == NotInit {
			return &Error{InsnIdx: pc, Kind: CheckOther, Msg: fmt.Sprintf("R%d !read_ok", ins.Src)}
		}
		if atomic && srcReg.Type.IsPtr() {
			return &Error{InsnIdx: pc, Kind: CheckOther,
				Msg: fmt.Sprintf("R%d atomic add of a pointer prohibited", ins.Src)}
		}
		if srcReg.Type.IsPtr() && !(dst.Type == PtrToStack && size == 8) {
			return &Error{InsnIdx: pc, Kind: CheckOther,
				Msg: fmt.Sprintf("R%d leaks addr into memory", ins.Src)}
		}
	}
	if err := v.checkMemAccess(st, pc, ins.Dst, ins.Off, size, true, node); err != nil {
		return err
	}
	if dst.Type == PtrToStack {
		if atomic {
			// Read-modify-write: the slot's tracked contents are gone.
			v.writeStack(st, dst, ins.Off, size, nil, ins)
		} else {
			v.writeStack(st, dst, ins.Off, size, srcReg, ins)
		}
	}
	return nil
}

// checkMemAccess validates one access of `size` bytes at reg+off,
// triggering BCF refinement at the instrumented rejection sites.
func (v *Verifier) checkMemAccess(st *VState, pc int, regno ebpf.Reg, off int16, size int, write bool, node *pathNode) error {
	for {
		reg := &st.Regs[regno]
		err := v.checkMemAccessOnce(st, pc, reg, regno, off, size, write)
		if err == nil {
			return nil
		}
		verr, ok := err.(*Error)
		if !ok {
			return err
		}
		if v.cfg.Sabotage.skipsBounds(verr.Kind) {
			return nil
		}
		var want struct {
			lo, hi uint64
			ok     bool
		}
		switch verr.Kind {
		case CheckMapAccess:
			valSize := int64(v.prog.Maps[reg.MapIdx].ValueSize)
			hi := valSize - int64(size) - int64(reg.Off) - int64(off)
			if hi >= 0 {
				want.lo, want.hi, want.ok = 0, uint64(hi), true
			}
		case CheckStackAccess:
			// Variable stack offset: the variable part must keep the whole
			// access within [-StackSize, 0). fixed + var + size <= 0 and
			// fixed + var >= -StackSize, with var proven unsigned-bounded.
			fixed := int64(reg.Off) + int64(off)
			hi := -int64(size) - fixed
			lo := -int64(ebpf.StackSize) - fixed
			if lo < 0 {
				lo = 0
			}
			if hi >= lo {
				want.lo, want.hi, want.ok = uint64(lo), uint64(hi), true
			}
		case CheckPktAccess:
			// The variable offset must keep fixed + var + size within the
			// proven packet range.
			hi := int64(st.PktRange) - int64(size) - int64(reg.Off) - int64(off)
			if hi >= 0 {
				want.lo, want.hi, want.ok = 0, uint64(hi), true
			}
		}
		if !want.ok {
			// No variable range can satisfy the check (e.g. the fixed
			// offset alone is out of bounds); the only way out is a proof
			// that the path itself is infeasible (paper Listing 8).
			want.lo, want.hi = 1, 0
		}
		if rerr := v.refine(st, pc, regno, verr.Kind, want.lo, want.hi, node, err); rerr != nil {
			return rerr
		}
		// Refinement adopted: re-check the same access.
	}
}

func (v *Verifier) checkMemAccessOnce(st *VState, pc int, reg *RegState, regno ebpf.Reg, off int16, size int, write bool) error {
	switch reg.Type {
	case PtrToStack:
		fixed := int64(reg.Off) + int64(off)
		// Guard against overflow in the bound arithmetic below: a variable
		// part outside a generous window is out of bounds regardless.
		if reg.SMin < -4*ebpf.StackSize || reg.SMax > 4*ebpf.StackSize {
			return &Error{InsnIdx: pc, Kind: CheckStackAccess,
				Msg: fmt.Sprintf("invalid unbounded variable-offset %s stack R%d", rw(write), regno)}
		}
		minOff := fixed + reg.SMin
		maxOff := fixed + reg.SMax
		if minOff < -ebpf.StackSize || maxOff+int64(size) > 0 {
			return &Error{InsnIdx: pc, Kind: CheckStackAccess,
				Msg: fmt.Sprintf("invalid %s stack R%d off=%d size=%d (range [%d,%d])",
					rw(write), regno, off, size, minOff, maxOff)}
		}
		return nil

	case PtrToMapValue:
		valSize := int64(v.prog.Maps[reg.MapIdx].ValueSize)
		fixed := int64(reg.Off) + int64(off)
		// Lower bound: the signed minimum of the full offset must be >= 0.
		if fixed+reg.SMin < 0 {
			return &Error{InsnIdx: pc, Kind: CheckMapAccess,
				Msg: fmt.Sprintf("R%d min value is negative, either use unsigned index or do a if (index >=0) check", regno)}
		}
		// Upper bound: umax of the full offset plus access size must fit.
		if reg.UMax > uint64(valSize) || fixed+int64(reg.UMax)+int64(size) > valSize {
			return &Error{InsnIdx: pc, Kind: CheckMapAccess,
				Msg: fmt.Sprintf("invalid access to map value, value_size=%d off=%d size=%d (R%d max offset %d)",
					valSize, fixed, size, regno, fixed+int64(reg.UMax))}
		}
		return nil

	case PtrToCtx:
		// Context accesses require a constant offset; this rejection site
		// is deliberately NOT instrumented for refinement (paper §6.2:
		// a small number of sites remain uninstrumented).
		if !reg.Var.IsConst() {
			return &Error{InsnIdx: pc, Kind: CheckCtxAccess,
				Msg: fmt.Sprintf("variable ctx access var_off=%s off=%d size=%d", reg.Var, off, size)}
		}
		if write && v.prog.Type == ebpf.ProgTracepoint {
			// The tracepoint context is the raw trace record: read-only.
			return &Error{InsnIdx: pc, Kind: CheckCtxAccess,
				Msg: fmt.Sprintf("invalid bpf_context access off=%d size=%d (tracepoint ctx is read-only)", off, size)}
		}
		coff := int64(reg.Off) + int64(off) + int64(reg.Var.Value)
		ctxSize := int64(v.prog.Type.CtxSize())
		if coff < 0 || coff+int64(size) > ctxSize {
			return &Error{InsnIdx: pc, Kind: CheckCtxAccess,
				Msg: fmt.Sprintf("invalid bpf_context access off=%d size=%d", coff, size)}
		}
		return nil

	case PtrToPacket:
		fixed := int64(reg.Off) + int64(off)
		if fixed+reg.SMin < 0 {
			return &Error{InsnIdx: pc, Kind: CheckPktAccess,
				Msg: fmt.Sprintf("R%d min packet offset is negative (%d)", regno, fixed+reg.SMin)}
		}
		// The unsigned-max guard doubles as the overflow guard: a variable
		// part past the kernel's MAX_PACKET_OFF can never be in range.
		if reg.UMax > maxPacketOff || fixed+int64(reg.UMax)+int64(size) > int64(st.PktRange) {
			return &Error{InsnIdx: pc, Kind: CheckPktAccess,
				Msg: fmt.Sprintf("invalid access to packet, off=%d size=%d, R%d pkt range=%d",
					fixed, size, regno, st.PktRange)}
		}
		return nil

	case PtrToPacketEnd:
		return &Error{InsnIdx: pc, Kind: CheckOther,
			Msg: fmt.Sprintf("R%d invalid mem access 'pkt_end'", regno)}

	case PtrToMapValueOrNull:
		return &Error{InsnIdx: pc, Kind: CheckOther,
			Msg: fmt.Sprintf("R%d invalid mem access 'map_value_or_null'", regno)}

	case ConstPtrToMap:
		return &Error{InsnIdx: pc, Kind: CheckOther,
			Msg: fmt.Sprintf("R%d invalid mem access 'map_ptr'", regno)}

	case Scalar:
		return &Error{InsnIdx: pc, Kind: CheckOther,
			Msg: fmt.Sprintf("R%d invalid mem access 'scalar'", regno)}
	}
	return &Error{InsnIdx: pc, Kind: CheckOther,
		Msg: fmt.Sprintf("R%d invalid mem access", regno)}
}

func rw(write bool) string {
	if write {
		return "write to"
	}
	return "read from"
}

// slotRange returns the stack slot indexes covered by an access with a
// constant final offset (negative, relative to the frame top).
func slotRange(off int64, size int) (int, int) {
	lo := ebpf.StackSize + int(off)
	return lo / 8, (lo + size - 1) / 8
}

// writeStack models the effect of a store through a stack pointer.
func (v *Verifier) writeStack(st *VState, reg *RegState, off int16, size int, src *RegState, ins ebpf.Instruction) {
	if !reg.Var.IsConst() {
		// Variable offset write: smudge every slot it may touch.
		minOff := int64(reg.Off) + int64(off) + reg.SMin
		maxOff := int64(reg.Off) + int64(off) + reg.SMax
		s0, s1 := slotRange(minOff, 1)
		_, s1b := slotRange(maxOff, size)
		if s1b > s1 {
			s1 = s1b
		}
		for i := s0; i <= s1 && i < NumStackSlots; i++ {
			if i >= 0 {
				st.Stack[i] = StackSlot{Kind: SlotMisc}
			}
		}
		return
	}
	fixed := int64(reg.Off) + int64(off) + int64(reg.Var.Value)
	s0, s1 := slotRange(fixed, size)
	// The bounds check normally guarantees s0..s1 lie in the frame, but
	// state modeling must stay total even when it did not (a sabotaged or
	// buggy check): clamp instead of indexing out of range.
	if size == 8 && fixed%8 == 0 && src != nil {
		// Register-sized aligned spill: preserve the full abstract state.
		if s0 >= 0 && s0 < NumStackSlots {
			st.Stack[s0] = StackSlot{Kind: SlotSpill, Spill: *src}
		}
		return
	}
	kind := SlotMisc
	if ins.Class() == ebpf.ClassST && ins.Imm == 0 {
		kind = SlotZero
	} else if src != nil && src.IsConst() && src.ConstVal() == 0 {
		kind = SlotZero
	}
	lo := ebpf.StackSize + int(fixed)
	for i := max(s0, 0); i <= s1 && i < NumStackSlots; i++ {
		if st.Stack[i].Kind == SlotZero && kind == SlotZero {
			continue
		}
		k := kind
		if k == SlotZero && (lo > i*8 || lo+size < (i+1)*8) {
			// A zero store that covers only part of this slot: the
			// uncovered bytes keep their previous (non-zero-tracked)
			// contents, so the slot as a whole is not known zero. Marking
			// it zero anyway once let a u32 zero store erase the upper
			// half of a live u64 spill and claim the whole slot was zero
			// (fuzz-domain regression).
			k = SlotMisc
		}
		st.Stack[i] = StackSlot{Kind: k}
	}
}

// readStack models the result of a load through a stack pointer (the
// bounds check has already passed).
func (v *Verifier) readStack(st *VState, reg *RegState, off int16, size int) RegState {
	if !reg.Var.IsConst() {
		return loadedScalar(size)
	}
	fixed := int64(reg.Off) + int64(off) + int64(reg.Var.Value)
	s0, s1 := slotRange(fixed, size)
	// Stay total past the frame edge (see writeStack): out-of-range slots
	// read as untracked data.
	if size == 8 && fixed%8 == 0 {
		if s0 < 0 || s0 >= NumStackSlots {
			return loadedScalar(size)
		}
		slot := st.Stack[s0]
		switch slot.Kind {
		case SlotSpill:
			return slot.Spill // fill restores the spilled register
		case SlotZero:
			return constScalar(0)
		}
		return loadedScalar(size)
	}
	// Sub-register read: if all covered slots are zero, the result is 0.
	allZero := true
	for i := s0; i <= s1; i++ {
		if i < 0 || i >= NumStackSlots || st.Stack[i].Kind != SlotZero {
			allZero = false
		}
	}
	if allZero {
		return constScalar(0)
	}
	return loadedScalar(size)
}

// checkStackRead validates that [off, off+size) of the frame is
// initialized, for helper arguments that read stack memory.
func (v *Verifier) checkStackRead(st *VState, pc int, fixed int64, size int) error {
	s0, s1 := slotRange(fixed, size)
	for i := s0; i <= s1; i++ {
		if i < 0 || i >= NumStackSlots {
			return &Error{InsnIdx: pc, Kind: CheckStackAccess, Msg: "stack access out of frame"}
		}
		if st.Stack[i].Kind == SlotInvalid {
			return &Error{InsnIdx: pc, Kind: CheckOther,
				Msg: fmt.Sprintf("invalid indirect read from stack off %d", fixed)}
		}
	}
	return nil
}

// markStackWritten marks [off, off+size) as written with untracked data,
// for helper arguments that write stack memory.
func (v *Verifier) markStackWritten(st *VState, fixed int64, size int) {
	s0, s1 := slotRange(fixed, size)
	for i := s0; i <= s1; i++ {
		if i >= 0 && i < NumStackSlots {
			st.Stack[i] = StackSlot{Kind: SlotMisc}
		}
	}
}
