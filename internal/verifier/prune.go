package verifier

import (
	"sync"
	"sync/atomic"

	"bcf/internal/ebpf"
	"bcf/internal/tnum"
)

// maxExploredPerInsn caps the explored-state list per instruction; beyond
// it we stop recording (still analyzing, just without pruning benefit),
// bounding memory like the kernel's state-list heuristics.
const maxExploredPerInsn = 64

// exploredEntry is one recorded state plus the DFS-order coordinate of
// the walk that recorded it; the coordinate restricts pruning visibility
// under parallel exploration (see parallel.go). dead is set when a later
// path-conditional refinement retracts the entry (retractEntries): its
// "explored without error" claim then holds only under branch
// constraints a pruned state need not share.
type exploredEntry struct {
	st    *VState
	order *pathOrder
	dead  *atomic.Bool
}

// exploredShard holds the explored states of a single pc behind its own
// lock, so concurrent subsumption checks at different instructions never
// serialize the run.
type exploredShard struct {
	mu      sync.Mutex
	entries []exploredEntry
}

// computePrunePoints marks every jump target and post-branch
// instruction, the positions where explored states are recorded.
func computePrunePoints(prog *ebpf.Program) []bool {
	points := make([]bool, len(prog.Insns))
	for i, ins := range prog.Insns {
		if !ins.IsJump() {
			continue
		}
		op := ins.JmpOp()
		if op == ebpf.JmpCALL || op == ebpf.JmpEXIT {
			continue
		}
		tgt := i + 1 + int(ins.Off)
		if tgt >= 0 && tgt < len(prog.Insns) {
			points[tgt] = true
		}
		if op != ebpf.JmpJA && i+1 < len(prog.Insns) {
			points[i+1] = true
		}
	}
	return points
}

// isPrunePoint reports whether pc is a position where explored states
// are recorded. The bitmap is precomputed in New — it used to be built
// lazily from inside the walk loop, a data race once paths walk
// concurrently.
func (v *Verifier) isPrunePoint(pc int) bool { return v.prunePoints[pc] }

// pruned reports whether an already-explored state at pc subsumes st; if
// not, st is recorded for future pruning and the entry's liveness flag
// is returned for retraction bookkeeping. Under parallel exploration an
// entry is only eligible to prune a walk ordered after the walk that
// recorded it — the visibility rule that keeps verdicts and reported
// errors identical to the sequential DFS regardless of timing — and,
// except for the recording walk itself, only once the recorder's whole
// subtree has finished. The subtree gate makes the dead flag race-free:
// a retraction can only come from a walk whose history passes through
// the entry (a subtree member), so once the subtree is closed any
// retraction has already landed. The recorder may keep pruning against
// its own entries mid-flight (loop revisits): its history shares every
// branch a later refinement could condition on.
func (v *Verifier) pruned(pc int, st *VState, order *pathOrder) (bool, *atomic.Bool) {
	par := v.cfg.ParallelPaths > 1
	sh := &v.explored[pc]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for i := range sh.entries {
		e := &sh.entries[i]
		if e.dead.Load() {
			continue
		}
		if par {
			if !orderBefore(e.order, order) {
				continue
			}
			if e.order != order && e.order.open.Load() != 0 {
				continue
			}
		}
		if statesSubsume(e.st, st) {
			return true, nil
		}
	}
	if len(sh.entries) >= maxExploredPerInsn {
		return false, nil
	}
	dead := new(atomic.Bool)
	sh.entries = append(sh.entries, exploredEntry{st: st.clone(), order: order, dead: dead})
	return false, dead
}

// idMap tracks the correspondence of register identities between an old
// (explored) and a new state, so that linkage assumptions in the old
// state are only relied on when the new state has them too.
type idMap map[uint32]uint32

func (m idMap) match(oldID, newID uint32) bool {
	if oldID == 0 {
		return true // old state assumed no linkage: always safe
	}
	if newID == 0 {
		return false // old relied on linkage the new state lacks
	}
	if cur, ok := m[oldID]; ok {
		return cur == newID
	}
	m[oldID] = newID
	return true
}

// statesSubsume reports whether every concrete state admitted by `new`
// was admitted by `old` (states_equal with range liveness, conservative).
func statesSubsume(old, new *VState) bool {
	// The old exploration's subtree may contain packet accesses proven
	// safe only up to old.PktRange; a new state with a smaller proven
	// range would not survive them (kernel: rold->range > rcur->range is
	// not safe).
	if old.PktRange > new.PktRange {
		return false
	}
	ids := idMap{}
	for i := range old.Regs {
		if !regSubsumes(&old.Regs[i], &new.Regs[i], ids) {
			return false
		}
	}
	for i := range old.Stack {
		if !slotSubsumes(&old.Stack[i], &new.Stack[i], ids) {
			return false
		}
	}
	return true
}

// regSubsumes reports whether old's abstraction covers new's (regsafe).
func regSubsumes(old, new *RegState, ids idMap) bool {
	if old.Type == NotInit {
		// Old exploration never read this register (it would have been
		// rejected), so its contents are irrelevant.
		return true
	}
	if !ids.match(old.ID, new.ID) {
		return false
	}
	switch old.Type {
	case Scalar:
		if new.Type != Scalar {
			return false
		}
		return rangeSubsumes(old, new)
	case PtrToStack, PtrToCtx, PtrToMapValue, PtrToMapValueOrNull, ConstPtrToMap,
		PtrToPacket, PtrToPacketEnd:
		if new.Type != old.Type || new.Off != old.Off || new.MapIdx != old.MapIdx {
			return false
		}
		return rangeSubsumes(old, new)
	}
	return false
}

// rangeSubsumes checks containment across all five domains.
func rangeSubsumes(old, new *RegState) bool {
	return old.UMin <= new.UMin && old.UMax >= new.UMax &&
		old.SMin <= new.SMin && old.SMax >= new.SMax &&
		old.U32Min <= new.U32Min && old.U32Max >= new.U32Max &&
		old.S32Min <= new.S32Min && old.S32Max >= new.S32Max &&
		tnum.In(old.Var, new.Var)
}

// slotSubsumes checks stack slot compatibility (stacksafe).
func slotSubsumes(old, new *StackSlot, ids idMap) bool {
	switch old.Kind {
	case SlotInvalid, SlotMisc:
		// Invalid: never read under old (reads rejected), so contents are
		// irrelevant. Misc: old treated contents as arbitrary bytes.
		return true
	case SlotZero:
		if new.Kind == SlotZero {
			return true
		}
		return new.Kind == SlotSpill && new.Spill.Type == Scalar &&
			new.Spill.IsConst() && new.Spill.ConstVal() == 0
	case SlotSpill:
		return new.Kind == SlotSpill && regSubsumes(&old.Spill, &new.Spill, ids)
	}
	return false
}
