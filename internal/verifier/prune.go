package verifier

import (
	"bcf/internal/ebpf"
	"bcf/internal/tnum"
)

// maxExploredPerInsn caps the explored-state list per instruction; beyond
// it we stop recording (still analyzing, just without pruning benefit),
// bounding memory like the kernel's state-list heuristics.
const maxExploredPerInsn = 64

// isPrunePoint reports whether pc is a jump target or post-branch
// instruction, the positions where explored states are recorded.
func (v *Verifier) isPrunePoint(pc int) bool {
	if v.prunePoints == nil {
		v.prunePoints = make([]bool, len(v.prog.Insns))
		for i, ins := range v.prog.Insns {
			if !ins.IsJump() {
				continue
			}
			op := ins.JmpOp()
			if op == ebpf.JmpCALL || op == ebpf.JmpEXIT {
				continue
			}
			tgt := i + 1 + int(ins.Off)
			if tgt >= 0 && tgt < len(v.prog.Insns) {
				v.prunePoints[tgt] = true
			}
			if op != ebpf.JmpJA && i+1 < len(v.prog.Insns) {
				v.prunePoints[i+1] = true
			}
		}
	}
	return v.prunePoints[pc]
}

// pruned reports whether an already-explored state at pc subsumes st; if
// not, st is recorded for future pruning.
func (v *Verifier) pruned(pc int, st *VState) bool {
	for _, old := range v.explored[pc] {
		if statesSubsume(old, st) {
			return true
		}
	}
	if len(v.explored[pc]) < maxExploredPerInsn {
		v.explored[pc] = append(v.explored[pc], st.clone())
	}
	return false
}

// idMap tracks the correspondence of register identities between an old
// (explored) and a new state, so that linkage assumptions in the old
// state are only relied on when the new state has them too.
type idMap map[uint32]uint32

func (m idMap) match(oldID, newID uint32) bool {
	if oldID == 0 {
		return true // old state assumed no linkage: always safe
	}
	if newID == 0 {
		return false // old relied on linkage the new state lacks
	}
	if cur, ok := m[oldID]; ok {
		return cur == newID
	}
	m[oldID] = newID
	return true
}

// statesSubsume reports whether every concrete state admitted by `new`
// was admitted by `old` (states_equal with range liveness, conservative).
func statesSubsume(old, new *VState) bool {
	ids := idMap{}
	for i := range old.Regs {
		if !regSubsumes(&old.Regs[i], &new.Regs[i], ids) {
			return false
		}
	}
	for i := range old.Stack {
		if !slotSubsumes(&old.Stack[i], &new.Stack[i], ids) {
			return false
		}
	}
	return true
}

// regSubsumes reports whether old's abstraction covers new's (regsafe).
func regSubsumes(old, new *RegState, ids idMap) bool {
	if old.Type == NotInit {
		// Old exploration never read this register (it would have been
		// rejected), so its contents are irrelevant.
		return true
	}
	if !ids.match(old.ID, new.ID) {
		return false
	}
	switch old.Type {
	case Scalar:
		if new.Type != Scalar {
			return false
		}
		return rangeSubsumes(old, new)
	case PtrToStack, PtrToCtx, PtrToMapValue, PtrToMapValueOrNull, ConstPtrToMap:
		if new.Type != old.Type || new.Off != old.Off || new.MapIdx != old.MapIdx {
			return false
		}
		return rangeSubsumes(old, new)
	}
	return false
}

// rangeSubsumes checks containment across all five domains.
func rangeSubsumes(old, new *RegState) bool {
	return old.UMin <= new.UMin && old.UMax >= new.UMax &&
		old.SMin <= new.SMin && old.SMax >= new.SMax &&
		old.U32Min <= new.U32Min && old.U32Max >= new.U32Max &&
		old.S32Min <= new.S32Min && old.S32Max >= new.S32Max &&
		tnum.In(old.Var, new.Var)
}

// slotSubsumes checks stack slot compatibility (stacksafe).
func slotSubsumes(old, new *StackSlot, ids idMap) bool {
	switch old.Kind {
	case SlotInvalid, SlotMisc:
		// Invalid: never read under old (reads rejected), so contents are
		// irrelevant. Misc: old treated contents as arbitrary bytes.
		return true
	case SlotZero:
		if new.Kind == SlotZero {
			return true
		}
		return new.Kind == SlotSpill && new.Spill.Type == Scalar &&
			new.Spill.IsConst() && new.Spill.ConstVal() == 0
	case SlotSpill:
		return new.Kind == SlotSpill && regSubsumes(&old.Spill, &new.Spill, ids)
	}
	return false
}
