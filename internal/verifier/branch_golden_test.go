package verifier

// Golden-case tests for the branch bounds logic in branch.go. Each case
// pins the exact five-domain abstraction regSetMinMax must produce for a
// tricky input, mirroring the corner cases the Linux reg_set_min_max has
// historically gotten wrong: signed/unsigned interplay across the sign
// boundary, JMP32 branches that must only inform the low word, JSET
// bit-knowledge, and JNE endpoint nudging. A separate sampling test
// cross-checks every refinement against concrete executions of the
// branch predicate, and checks isBranchTaken never contradicts them.

import (
	"math"
	"testing"

	"bcf/internal/ebpf"
	"bcf/internal/tnum"
)

// neg8 is -8 as a raw uint64 (0xfffffffffffffff8).
const neg8 = ^uint64(7)

// bounds flattens the five scalar domains for golden comparison.
type bounds struct {
	Var            tnum.Tnum
	UMin, UMax     uint64
	SMin, SMax     int64
	U32Min, U32Max uint32
	S32Min, S32Max int32
}

func boundsOf(r *RegState) bounds {
	return bounds{r.Var, r.UMin, r.UMax, r.SMin, r.SMax, r.U32Min, r.U32Max, r.S32Min, r.S32Max}
}

// unkBounds is the no-knowledge scalar, the starting point most cases
// tweak a few fields of.
func unkBounds() bounds {
	return bounds{
		Var:  tnum.Unknown,
		UMin: 0, UMax: math.MaxUint64,
		SMin: math.MinInt64, SMax: math.MaxInt64,
		U32Min: 0, U32Max: math.MaxUint32,
		S32Min: math.MinInt32, S32Max: math.MaxInt32,
	}
}

func mkBounds(mod func(*bounds)) bounds {
	b := unkBounds()
	mod(&b)
	return b
}

// uScalar builds a scalar from an unsigned 64-bit interval; sync derives
// the other domains exactly as verifier transfer functions do.
func uScalar(umin, umax uint64) RegState {
	r := unknownScalar()
	r.UMin, r.UMax = umin, umax
	r.sync()
	return r
}

func TestRegSetMinMaxGolden(t *testing.T) {
	cases := []struct {
		name        string
		dst, src    RegState
		op          uint8
		is32, taken bool
		wantDst     bounds
		wantSrc     *bounds // nil: src must come out unchanged
	}{
		{
			// `if r > 7 goto`, taken: only the unsigned floor moves; the
			// range still spans the sign boundary, so no signed knowledge.
			name: "jgt-imm-taken",
			dst:  unknownScalar(), src: constScalar(7), op: ebpf.JmpJGT, taken: true,
			wantDst: mkBounds(func(b *bounds) { b.UMin = 8 }),
		},
		{
			// `if r > 7 goto`, fallthrough (JLE 7): a small unsigned
			// ceiling propagates into every domain and the tnum.
			name: "jgt-imm-fallthrough",
			dst:  unknownScalar(), src: constScalar(7), op: ebpf.JmpJGT, taken: false,
			wantDst: bounds{
				Var:  tnum.Tnum{Value: 0, Mask: 7},
				UMin: 0, UMax: 7, SMin: 0, SMax: 7,
				U32Min: 0, U32Max: 7, S32Min: 0, S32Max: 7,
			},
		},
		{
			// `if r s> -8 goto`, taken: signed floor only; the value may
			// still be any unsigned magnitude (e.g. small positives and
			// huge positives both satisfy s > -8).
			name: "jsgt-neg-imm-taken",
			dst:  unknownScalar(), src: constScalar(neg8), op: ebpf.JmpJSGT, taken: true,
			wantDst: mkBounds(func(b *bounds) { b.SMin = -7 }),
		},
		{
			// `if r s> -8 goto`, fallthrough (JSLE -8): an all-negative
			// range has a fixed sign bit, so deduction derives exact
			// unsigned bounds in the upper half and a known-ones tnum top
			// bit. The low word stays unknown: -8 and -2^40 share no
			// subreg knowledge.
			name: "jsgt-neg-imm-fallthrough",
			dst:  unknownScalar(), src: constScalar(neg8), op: ebpf.JmpJSGT, taken: false,
			wantDst: mkBounds(func(b *bounds) {
				b.Var = tnum.Tnum{Value: 1 << 63, Mask: math.MaxInt64}
				b.UMin, b.UMax = 1<<63, neg8
				b.SMax = -8
			}),
		},
		{
			// `if r1 == r2 goto`, taken: both sides collapse onto the
			// interval intersection and share it.
			name: "jeq-reg-intersect",
			dst:  uScalar(0, 100), src: uScalar(50, 200), op: ebpf.JmpJEQ, taken: true,
			wantDst: bounds{
				Var:  tnum.Tnum{Value: 0, Mask: 0x7f},
				UMin: 50, UMax: 100, SMin: 50, SMax: 100,
				U32Min: 50, U32Max: 100, S32Min: 50, S32Max: 100,
			},
			wantSrc: &bounds{
				Var:  tnum.Tnum{Value: 0, Mask: 0x7f},
				UMin: 50, UMax: 100, SMin: 50, SMax: 100,
				U32Min: 50, U32Max: 100, S32Min: 50, S32Max: 100,
			},
		},
		{
			// `if r == 5 goto`, fallthrough (JNE 5) with r ∈ [5, 10]:
			// the excluded constant sits on the range endpoint, so the
			// endpoint nudges in.
			name: "jne-const-endpoint",
			dst:  uScalar(5, 10), src: constScalar(5), op: ebpf.JmpJEQ, taken: false,
			wantDst: bounds{
				Var:  tnum.Tnum{Value: 0, Mask: 0xf},
				UMin: 6, UMax: 10, SMin: 6, SMax: 10,
				U32Min: 6, U32Max: 10, S32Min: 6, S32Max: 10,
			},
		},
		{
			// `if w < 16 goto`, taken: a JMP32 branch informs the low
			// word only. The subreg becomes [0, 15] but the upper 32 bits
			// stay fully unknown — the 64-bit bounds must NOT collapse.
			name: "w-jlt-imm-taken",
			dst:  unknownScalar(), src: constScalar(16), op: ebpf.JmpJLT, is32: true, taken: true,
			wantDst: mkBounds(func(b *bounds) {
				b.Var = tnum.Tnum{Value: 0, Mask: 0xffffffff_0000000f}
				b.UMax = 0xffffffff_0000000f
				b.SMax = 0x7fffffff_0000000f
				b.U32Min, b.U32Max = 0, 15
				b.S32Min, b.S32Max = 0, 15
			}),
		},
		{
			// `if w s> -1 goto`, taken: the subreg is non-negative, so
			// its top bit is known zero; the upper word stays unknown.
			name: "w-jsgt-neg1-taken",
			dst:  unknownScalar(), src: constScalar(^uint64(0)), op: ebpf.JmpJSGT, is32: true, taken: true,
			wantDst: mkBounds(func(b *bounds) {
				b.Var = tnum.Tnum{Value: 0, Mask: 0xffffffff_7fffffff}
				b.UMax = 0xffffffff_7fffffff
				b.SMax = 0x7fffffff_7fffffff
				b.U32Min, b.U32Max = 0, math.MaxInt32
				b.S32Min, b.S32Max = 0, math.MaxInt32
			}),
		},
		{
			// `if r & 0x40 goto`, taken with a single-bit mask: that bit
			// is known one, which floors both unsigned domains and lifts
			// the signed minima off the lattice bottom by exactly 0x40.
			name: "jset-single-bit-taken",
			dst:  unknownScalar(), src: constScalar(0x40), op: ebpf.JmpJSET, taken: true,
			wantDst: mkBounds(func(b *bounds) {
				b.Var = tnum.Tnum{Value: 0x40, Mask: ^uint64(0x40)}
				b.UMin = 0x40
				b.SMin = math.MinInt64 + 0x40
				b.U32Min = 0x40
				b.S32Min = math.MinInt32 + 0x40
			}),
		},
		{
			// `if r & 0xf0 goto`, fallthrough: every bit in the mask is
			// known zero, capping all the maxima.
			name: "jset-fallthrough-clears",
			dst:  unknownScalar(), src: constScalar(0xf0), op: ebpf.JmpJSET, taken: false,
			wantDst: mkBounds(func(b *bounds) {
				b.Var = tnum.Tnum{Value: 0, Mask: ^uint64(0xf0)}
				b.UMax = ^uint64(0xf0)
				b.SMax = 0x7fffffff_ffffff0f
				b.U32Max = 0xffffff0f
				b.S32Max = 0x7fffff0f
			}),
		},
		{
			// `if w & 0xff goto`, fallthrough on a JMP32 branch: the low
			// byte of the subreg is known zero; bits 32+ are untouched.
			name: "w-jset-fallthrough-clears",
			dst:  unknownScalar(), src: constScalar(0xff), op: ebpf.JmpJSET, is32: true, taken: false,
			wantDst: mkBounds(func(b *bounds) {
				b.Var = tnum.Tnum{Value: 0, Mask: 0xffffffff_ffffff00}
				b.UMax = 0xffffffff_ffffff00
				b.SMax = 0x7fffffff_ffffff00
				b.U32Max = 0xffffff00
				b.S32Max = 0x7fffff00
			}),
		},
		{
			// `if r & 0x18 goto`, taken with a multi-bit mask: only "at
			// least one of these bits is set" is known, which no single
			// tnum can express — the state must stay unrefined rather
			// than unsoundly claim both bits.
			name: "jset-multibit-taken-no-refine",
			dst:  unknownScalar(), src: constScalar(0x18), op: ebpf.JmpJSET, taken: true,
			wantDst: unkBounds(),
		},
	}

	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			d, s := tc.dst, tc.src
			preSrc := boundsOf(&s)
			regSetMinMax(&d, &s, tc.op, tc.taken, tc.is32)
			if !d.wellFormed() {
				t.Fatalf("refined dst not well-formed: %+v", boundsOf(&d))
			}
			if !s.wellFormed() {
				t.Fatalf("refined src not well-formed: %+v", boundsOf(&s))
			}
			if got := boundsOf(&d); got != tc.wantDst {
				t.Errorf("dst bounds:\n got  %+v\n want %+v", got, tc.wantDst)
			}
			wantSrc := preSrc
			if tc.wantSrc != nil {
				wantSrc = *tc.wantSrc
			}
			if got := boundsOf(&s); got != wantSrc {
				t.Errorf("src bounds:\n got  %+v\n want %+v", got, wantSrc)
			}
		})
	}
}

// TestSignedThenUnsignedSequence pins the classic two-branch bounding
// idiom `if r s< 0 goto out; if r > 15 goto out`: the signed check alone
// must not produce unsigned knowledge beyond the positive half, and the
// following unsigned ceiling must tighten every domain to [0, 15].
func TestSignedThenUnsignedSequence(t *testing.T) {
	d := unknownScalar()

	zero := constScalar(0)
	regSetMinMax(&d, &zero, ebpf.JmpJSLT, false, false) // fallthrough of `if r s< 0`
	want := mkBounds(func(b *bounds) {
		b.Var = tnum.Tnum{Value: 0, Mask: math.MaxInt64}
		b.UMax = math.MaxInt64
		b.SMin = 0
	})
	if got := boundsOf(&d); got != want {
		t.Fatalf("after s>=0:\n got  %+v\n want %+v", got, want)
	}

	fifteen := constScalar(15)
	regSetMinMax(&d, &fifteen, ebpf.JmpJGT, false, false) // fallthrough of `if r > 15`
	want = bounds{
		Var:  tnum.Tnum{Value: 0, Mask: 0xf},
		UMin: 0, UMax: 15, SMin: 0, SMax: 15,
		U32Min: 0, U32Max: 15, S32Min: 0, S32Max: 15,
	}
	if got := boundsOf(&d); got != want {
		t.Fatalf("after s>=0 && u<=15:\n got  %+v\n want %+v", got, want)
	}
}

// branchPredicate evaluates the concrete branch condition, written
// directly from the ISA semantics (unsigned/signed compare at the
// selected width) as an independent model of the refinement.
func branchPredicate(op uint8, x, y uint64, is32 bool) bool {
	if is32 {
		x, y = uint64(uint32(x)), uint64(uint32(y))
	}
	sx, sy := int64(x), int64(y)
	if is32 {
		sx, sy = int64(int32(uint32(x))), int64(int32(uint32(y)))
	}
	switch op {
	case ebpf.JmpJEQ:
		return x == y
	case ebpf.JmpJNE:
		return x != y
	case ebpf.JmpJGT:
		return x > y
	case ebpf.JmpJGE:
		return x >= y
	case ebpf.JmpJLT:
		return x < y
	case ebpf.JmpJLE:
		return x <= y
	case ebpf.JmpJSGT:
		return sx > sy
	case ebpf.JmpJSGE:
		return sx >= sy
	case ebpf.JmpJSLT:
		return sx < sy
	case ebpf.JmpJSLE:
		return sx <= sy
	case ebpf.JmpJSET:
		return x&y != 0
	}
	panic("unknown op")
}

// branchSamplePool returns abstract states spanning the shapes branch
// refinement encounters: unknown, constants (including -1), unsigned and
// signed intervals, 32-bit-only knowledge, and tnum bit knowledge.
func branchSamplePool() []RegState {
	sScalar := func(smin, smax int64) RegState {
		r := unknownScalar()
		r.SMin, r.SMax = smin, smax
		r.sync()
		return r
	}
	u32Scalar := func(lo, hi uint32) RegState {
		r := unknownScalar()
		r.U32Min, r.U32Max = lo, hi
		r.sync()
		return r
	}
	bitScalar := func(bit uint64) RegState {
		r := unknownScalar()
		r.Var = tnum.Tnum{Value: bit, Mask: ^bit}
		r.sync()
		return r
	}
	return []RegState{
		unknownScalar(),
		constScalar(0),
		constScalar(5),
		constScalar(^uint64(0)),
		uScalar(0, 7),
		uScalar(4, 12),
		uScalar(100, 1<<40),
		sScalar(-8, 8),
		sScalar(math.MinInt64, -1),
		u32Scalar(3, 300),
		bitScalar(0x40),
	}
}

// branchSampleValues are the concrete candidates checked against each
// pool state; the interesting edges of every pool interval plus the
// sign/width boundaries.
var branchSampleValues = []uint64{
	0, 1, 3, 4, 5, 6, 7, 8, 12, 15, 16, 0x40, 0x41, 100, 255, 300,
	1 << 31, 1<<31 + 5, 1 << 32, 1<<32 + 3, 1 << 40,
	math.MaxInt64, 1 << 63, 1<<63 + 5,
	^uint64(0), ^uint64(7), neg8, 0xffffffff_00000000,
}

// TestRegSetMinMaxEdgeSoundness cross-checks every refinement against
// concrete members: for each abstract pair and branch direction actually
// witnessed by a concrete (x, y), the refined states must still admit x
// and y, stay well-formed, and isBranchTaken must not have ruled the
// direction out.
func TestRegSetMinMaxEdgeSoundness(t *testing.T) {
	pool := branchSamplePool()
	ops := []uint8{
		ebpf.JmpJEQ, ebpf.JmpJNE, ebpf.JmpJGT, ebpf.JmpJGE, ebpf.JmpJLT,
		ebpf.JmpJLE, ebpf.JmpJSGT, ebpf.JmpJSGE, ebpf.JmpJSLT, ebpf.JmpJSLE,
		ebpf.JmpJSET,
	}
	members := func(r *RegState) []uint64 {
		var out []uint64
		for _, v := range branchSampleValues {
			if r.contains(v) {
				out = append(out, v)
			}
		}
		return out
	}
	checked := 0
	for di, dstPre := range pool {
		dvals := members(&dstPre)
		for si, srcPre := range pool {
			svals := members(&srcPre)
			for _, op := range ops {
				for _, is32 := range []bool{false, true} {
					outcome := isBranchTaken(&dstPre, &srcPre, op, is32)
					// Refine lazily: only directions with a concrete
					// witness are reachable, and only those must produce
					// a consistent state.
					var refined [2]*[2]RegState
					for _, x := range dvals {
						for _, y := range svals {
							taken := branchPredicate(op, x, y, is32)
							if taken && outcome == branchNever || !taken && outcome == branchAlways {
								t.Fatalf("pool[%d] pool[%d] op %#x is32=%v: isBranchTaken=%d contradicts concrete (%#x, %#x) taken=%v",
									di, si, op, is32, outcome, x, y, taken)
							}
							idx := 0
							if taken {
								idx = 1
							}
							if refined[idx] == nil {
								d, s := dstPre, srcPre
								regSetMinMax(&d, &s, op, taken, is32)
								if !d.wellFormed() || !s.wellFormed() {
									t.Fatalf("pool[%d] pool[%d] op %#x is32=%v taken=%v: refined state not well-formed\ndst %+v\nsrc %+v",
										di, si, op, is32, taken, boundsOf(&d), boundsOf(&s))
								}
								refined[idx] = &[2]RegState{d, s}
							}
							d, s := &refined[idx][0], &refined[idx][1]
							if ok, dom := d.Admits(x); !ok {
								t.Fatalf("pool[%d] pool[%d] op %#x is32=%v taken=%v: refined dst excludes member %#x (domain %s)\npre  %+v\npost %+v",
									di, si, op, is32, taken, x, dom, boundsOf(&dstPre), boundsOf(d))
							}
							if ok, dom := s.Admits(y); !ok {
								t.Fatalf("pool[%d] pool[%d] op %#x is32=%v taken=%v: refined src excludes member %#x (domain %s)\npre  %+v\npost %+v",
									di, si, op, is32, taken, y, dom, boundsOf(&srcPre), boundsOf(s))
							}
							checked++
						}
					}
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no concrete pairs checked; sample pool is vacuous")
	}
	t.Logf("checked %d concrete (pair, op, width) refinements", checked)
}
