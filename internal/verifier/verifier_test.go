package verifier

import (
	"strings"
	"testing"

	"bcf/internal/ebpf"
)

func mapProg(src string, maps ...*ebpf.MapSpec) *ebpf.Program {
	return &ebpf.Program{
		Name:  "test",
		Type:  ebpf.ProgTracepoint,
		Insns: ebpf.MustAssemble(src),
		Maps:  maps,
	}
}

var testMap16 = &ebpf.MapSpec{Name: "m", Type: ebpf.MapArray, KeySize: 4, ValueSize: 16, MaxEntries: 4}

// lookupPrologue loads map[0] with key 0 and null-checks into r1.
const lookupPrologue = `
	r1 = map[0]
	r2 = r10
	r2 += -4
	*(u32 *)(r10 -4) = 0
	call 1
	if r0 == 0 goto miss
`
const lookupEpilogue = `
miss:
	r0 = 0
	exit
`

func verify(t *testing.T, p *ebpf.Program) error {
	t.Helper()
	v := New(p, Config{})
	return v.Verify()
}

func mustAccept(t *testing.T, p *ebpf.Program) {
	t.Helper()
	if err := verify(t, p); err != nil {
		t.Fatalf("expected accept, got: %v", err)
	}
}

func mustReject(t *testing.T, p *ebpf.Program, msgFragment string) {
	t.Helper()
	err := verify(t, p)
	if err == nil {
		t.Fatalf("expected rejection containing %q, got accept", msgFragment)
	}
	if msgFragment != "" && !strings.Contains(err.Error(), msgFragment) {
		t.Fatalf("expected rejection containing %q, got: %v", msgFragment, err)
	}
}

func TestAcceptTrivial(t *testing.T) {
	mustAccept(t, mapProg(`
		r0 = 0
		exit
	`))
}

func TestRejectUninitR0(t *testing.T) {
	mustReject(t, mapProg(`
		exit
	`), "R0 !read_ok")
}

func TestRejectUninitRegUse(t *testing.T) {
	mustReject(t, mapProg(`
		r0 = r3
		exit
	`), "!read_ok")
}

func TestAcceptStackRoundTrip(t *testing.T) {
	mustAccept(t, mapProg(`
		r1 = 77
		*(u64 *)(r10 -8) = r1
		r0 = *(u64 *)(r10 -8)
		exit
	`))
}

func TestRejectStackOOB(t *testing.T) {
	mustReject(t, mapProg(`
		r0 = *(u64 *)(r10 -520)
		exit
	`), "stack")
	mustReject(t, mapProg(`
		r1 = 0
		*(u8 *)(r10 +0) = r1
		exit
	`), "stack")
}

func TestRejectUninitStackRead(t *testing.T) {
	// Reading never-written stack memory through a helper is rejected.
	mustReject(t, mapProg(`
		r1 = map[0]
		r2 = r10
		r2 += -4
		call 1
		r0 = 0
		exit
	`, testMap16), "")
}

func TestPaperListing1CorrectRejection(t *testing.T) {
	// r2 in [0,30] after shift; 1-byte access at map_value+r2 with
	// value_size 16 can reach offset 30: correctly rejected.
	mustReject(t, mapProg(lookupPrologue+`
		r1 = r0
		r2 = *(u64 *)(r1 +0)
		r2 &= 0xf
		r2 <<= 1
		r1 += r2
		r0 = *(u8 *)(r1 +0)
		exit
	`+lookupEpilogue, testMap16), "map value")
}

func TestMaskedMapAccessAccepted(t *testing.T) {
	// r2 in [0,15]: 1-byte access within 16-byte value is fine.
	mustAccept(t, mapProg(lookupPrologue+`
		r1 = r0
		r2 = *(u64 *)(r1 +0)
		r2 &= 0xf
		r1 += r2
		r0 = *(u8 *)(r1 +0)
		exit
	`+lookupEpilogue, testMap16))
}

func TestPaperFigure2FalseRejection(t *testing.T) {
	// The Figure 2 pattern: r2+r3 is exactly 15, but the baseline
	// abstraction over-approximates to [0,30] and rejects.
	mustReject(t, mapProg(lookupPrologue+`
		r1 = r0
		r2 = *(u64 *)(r1 +0)
		r2 &= 0xf
		r1 += r2
		r3 = 0xf
		r3 -= r2
		r1 += r3
		r0 = *(u8 *)(r1 +0)
		exit
	`+lookupEpilogue, testMap16), "map value")
}

func TestNullCheckRequired(t *testing.T) {
	mustReject(t, mapProg(`
		r1 = map[0]
		r2 = r10
		r2 += -4
		*(u32 *)(r10 -4) = 0
		call 1
		r0 = *(u8 *)(r0 +0)
		exit
	`, testMap16), "map_value_or_null")
}

func TestBranchRefinementUnsigned(t *testing.T) {
	// if r2 > 15 exits; fallthrough has r2 in [0,15].
	mustAccept(t, mapProg(lookupPrologue+`
		r1 = r0
		r2 = *(u64 *)(r1 +0)
		if r2 > 15 goto miss
		r1 += r2
		r0 = *(u8 *)(r1 +0)
		exit
	`+lookupEpilogue, testMap16))
}

func TestBranchRefinementSigned(t *testing.T) {
	// Signed bounds alone do not constrain unsigned: still rejected.
	mustReject(t, mapProg(lookupPrologue+`
		r1 = r0
		r2 = *(u64 *)(r1 +0)
		if r2 s> 15 goto miss
		r1 += r2
		r0 = *(u8 *)(r1 +0)
		exit
	`+lookupEpilogue, testMap16), "")
}

func TestBranch32Refinement(t *testing.T) {
	// A 32-bit comparison constrains only the low word, but a following
	// 32-bit mov zero-extends, making the bound usable.
	mustAccept(t, mapProg(lookupPrologue+`
		r1 = r0
		r2 = *(u64 *)(r1 +0)
		if w2 > 12 goto miss
		w2 = w2
		r1 += r2
		r0 = *(u8 *)(r1 +0)
		exit
	`+lookupEpilogue, testMap16))
}

func TestLinkedScalars64BitMov(t *testing.T) {
	// 64-bit mov links r2 and r5: bounding r2 also bounds r5.
	mustAccept(t, mapProg(lookupPrologue+`
		r1 = r0
		r2 = *(u64 *)(r1 +0)
		r5 = r2
		if r2 > 12 goto miss
		r1 += r5
		r0 = *(u8 *)(r1 +0)
		exit
	`+lookupEpilogue, testMap16))
}

func TestUnlinkedScalars32BitMov(t *testing.T) {
	// Paper Listing 9: 32-bit movs do not link registers; the bound on w1
	// does not transfer to w5 and the access is (falsely) rejected.
	mustReject(t, mapProg(lookupPrologue+`
		r1 = r0
		r6 = *(u64 *)(r1 +0)
		w2 = w6
		w5 = w6
		if w2 > 12 goto miss
		w5 = w5
		r1 += r5
		r0 = *(u8 *)(r1 +0)
		exit
	`+lookupEpilogue, testMap16), "map value")
}

func TestSpillFillPreservesBounds(t *testing.T) {
	// A full 8-byte spill/fill preserves the range.
	mustAccept(t, mapProg(lookupPrologue+`
		r1 = r0
		r2 = *(u64 *)(r1 +0)
		r2 &= 0xf
		*(u64 *)(r10 -8) = r2
		r3 = *(u64 *)(r10 -8)
		r1 += r3
		r0 = *(u8 *)(r1 +0)
		exit
	`+lookupEpilogue, testMap16))
}

func TestSubRegisterSpillLosesBounds(t *testing.T) {
	// Paper §5 limitation analog: a 4-byte spill is not tracked, so the
	// filled value is unbounded and the access is rejected.
	mustReject(t, mapProg(lookupPrologue+`
		r1 = r0
		r2 = *(u64 *)(r1 +0)
		r2 &= 0xf
		*(u32 *)(r10 -8) = r2
		r3 = *(u32 *)(r10 -8)
		r1 += r3
		r0 = *(u8 *)(r1 +0)
		exit
	`+lookupEpilogue, testMap16), "map value")
}

func TestHelperSizeBounded(t *testing.T) {
	mustAccept(t, mapProg(`
		r1 = r10
		r1 += -16
		r2 = 16
		r3 = 0
		call 4
		r0 = 0
		exit
	`))
}

func TestHelperSizeTooLarge(t *testing.T) {
	mustReject(t, mapProg(`
		r1 = r10
		r1 += -16
		r2 = 17
		r3 = 0
		call 4
		r0 = 0
		exit
	`), "")
}

func TestHelperSizeZeroRejected(t *testing.T) {
	mustReject(t, mapProg(`
		r1 = r10
		r1 += -16
		r2 = 0
		r3 = 0
		call 4
		r0 = 0
		exit
	`), "zero-size")
}

func TestHelperVariableSizeBounded(t *testing.T) {
	mustAccept(t, mapProg(lookupPrologue+`
		r6 = *(u64 *)(r0 +0)
		r6 &= 0xf
		r6 += 1
		r1 = r10
		r1 += -16
		r2 = r6
		r3 = 0
		call 4
		r0 = 0
		exit
	`+lookupEpilogue, testMap16))
}

func TestCtxAccess(t *testing.T) {
	mustAccept(t, mapProg(`
		r0 = *(u32 *)(r1 +0)
		exit
	`))
	mustReject(t, mapProg(`
		r0 = *(u32 *)(r1 +200)
		exit
	`), "bpf_context")
	// Variable ctx offset: the uninstrumented rejection site.
	mustReject(t, mapProg(`
		r2 = *(u32 *)(r1 +0)
		r2 &= 3
		r1 += r2
		r0 = *(u32 *)(r1 +4)
		exit
	`), "variable ctx access")
}

func TestPointerArithmeticRestrictions(t *testing.T) {
	mustReject(t, mapProg(`
		r1 *= 2
		r0 = 0
		exit
	`), "prohibited")
	mustReject(t, mapProg(`
		r1 -= r10
		r0 = 0
		exit
	`), "")
	mustReject(t, mapProg(`
		w10 = 1
		r0 = 0
		exit
	`), "frame pointer")
}

func TestDivByZeroImmediate(t *testing.T) {
	mustReject(t, mapProg(`
		r0 = 10
		r0 /= 0
		exit
	`), "division by zero")
}

func TestUnknownHelperRejected(t *testing.T) {
	mustReject(t, mapProg(`
		call 9999
		exit
	`), "unknown helper")
}

func TestInsnLimit(t *testing.T) {
	// r0 differs on every iteration, defeating pruning, so the analysis
	// walks the loop until the instruction budget is exhausted.
	p := mapProg(`
		r6 = r1
		r0 = 0
	loop:
		r0 += 1
		r2 = *(u32 *)(r6 +0)
		if r2 != 0 goto loop
		exit
	`)
	v := New(p, Config{InsnLimit: 1000})
	err := v.Verify()
	if err == nil || !strings.Contains(err.Error(), "too large") {
		t.Fatalf("expected insn-limit rejection, got %v", err)
	}
}

func TestBoundedLoopAccepted(t *testing.T) {
	// A constant-bounded countdown loop terminates the analysis quickly.
	mustAccept(t, mapProg(`
		r0 = 8
	loop:
		r0 += -1
		if r0 != 0 goto loop
		exit
	`))
}

func TestPruningConvergence(t *testing.T) {
	// A diamond ladder would be exponential without pruning; with
	// pruning the state count stays linear.
	var sb strings.Builder
	sb.WriteString("r0 = 0\n")
	for i := 0; i < 24; i++ {
		sb.WriteString("r2 = *(u32 *)(r1 +0)\nif r2 == 0 goto +1\nr0 += 0\n")
	}
	sb.WriteString("exit\n")
	p := mapProg(sb.String())
	v := New(p, Config{})
	if err := v.Verify(); err != nil {
		t.Fatal(err)
	}
	if v.Stats().InsnProcessed > 5000 {
		t.Errorf("pruning ineffective: processed %d insns", v.Stats().InsnProcessed)
	}
	if v.Stats().StatesPruned == 0 {
		t.Errorf("expected pruned states")
	}
}

func TestPaperListing8UnreachablePath(t *testing.T) {
	// w1 = input>>31 (arithmetic) can be 0 or -1; & -134 gives 0 or -134.
	// In the w1 <= -1 branch, w1 == -134, so w1 != -136 always holds; the
	// baseline misses this and rejects along the unreachable path.
	mustReject(t, mapProg(lookupPrologue+`
		r1 = r0
		r6 = *(u32 *)(r1 +0)
		w1 = w6
		w1 s>>= 31
		w1 &= -134
		if w1 s> -1 goto safe
		if w1 != -136 goto safe
		r2 = 100
		r1 = r0
		r1 += r2
		r0 = *(u8 *)(r1 +0)
		exit
	safe:
		r0 = 0
		exit
	`+lookupEpilogue, testMap16), "")
}

func TestStatsPopulated(t *testing.T) {
	p := mapProg(`
		r0 = 0
		if r1 != 0 goto +1
		r0 = 1
		exit
	`)
	v := New(p, Config{Debug: true})
	if err := v.Verify(); err != nil {
		t.Fatal(err)
	}
	st := v.Stats()
	if st.InsnProcessed == 0 || st.PathsExplored == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	if len(v.Log()) == 0 {
		t.Errorf("debug log empty")
	}
}

func TestAtomicAddVerified(t *testing.T) {
	// An atomic counter bump on a map value: classic per-CPU statistics.
	mustAccept(t, mapProg(lookupPrologue+`
		r2 = 1
		lock *(u64 *)(r0 +0) += r2
		r0 = 0
		exit
	`+lookupEpilogue, testMap16))
}

func TestAtomicAddChecksBounds(t *testing.T) {
	mustReject(t, mapProg(lookupPrologue+`
		r2 = 1
		lock *(u64 *)(r0 +9) += r2
		r0 = 0
		exit
	`+lookupEpilogue, testMap16), "map value")
}

func TestAtomicAddOfPointerRejected(t *testing.T) {
	mustReject(t, mapProg(`
		r1 = 0
		*(u64 *)(r10 -8) = r1
		lock *(u64 *)(r10 -8) += r10
		r0 = 0
		exit
	`), "pointer")
}

func TestAtomicAddInvalidatesSpill(t *testing.T) {
	// A spilled bound modified in place can no longer justify the access.
	mustReject(t, mapProg(lookupPrologue+`
		r6 = *(u64 *)(r0 +0)
		r6 &= 0xf
		*(u64 *)(r10 -8) = r6
		r2 = 1
		lock *(u64 *)(r10 -8) += r2
		r7 = *(u64 *)(r10 -8)
		r1 = r0
		r1 += r7
		r0 = *(u8 *)(r1 +0)
		exit
	`+lookupEpilogue, testMap16), "")
}
