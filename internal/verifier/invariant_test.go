package verifier

import (
	"strings"
	"testing"

	"bcf/internal/ebpf"
)

// loopProg counts with r6 while polling an unknown context value; the
// per-iteration counter change defeats pruning without an invariant.
const loopProgSrc = `
	r7 = r1
	r6 = 0
loop:
	r6 += 1
	r2 = *(u32 *)(r7 +0)
	if r2 != 0 goto loop
	r0 = 0
	exit
`

func TestLoopWithoutInvariantHitsBudget(t *testing.T) {
	p := mapProg(loopProgSrc)
	v := New(p, Config{InsnLimit: 2000})
	err := v.Verify()
	if err == nil || !strings.Contains(err.Error(), "too large") {
		t.Fatalf("expected budget exhaustion, got %v", err)
	}
}

func TestLoopInvariantSinglePass(t *testing.T) {
	p := mapProg(loopProgSrc)
	// The loop head is the insn at the "loop" label: index 2.
	v := New(p, Config{InsnLimit: 2000, LoopInvariants: []LoopInvariant{
		{Insn: 2, Regs: []RegRange{{Reg: ebpf.R6, UMin: 0, UMax: ^uint64(0)}}},
	}})
	if err := v.Verify(); err != nil {
		t.Fatalf("invariant should make the loop converge: %v", err)
	}
	if v.Stats().InsnProcessed > 100 {
		t.Errorf("loop not analyzed in a single pass: %d insns", v.Stats().InsnProcessed)
	}
}

func TestLoopInvariantBoundedCounterUsable(t *testing.T) {
	// The declared fixpoint bounds the counter, and the bound is tight
	// enough to index a 16-byte map value inside the loop.
	src := `
		r7 = r1
		r1 = map[0]
		r2 = r10
		r2 += -4
		*(u32 *)(r10 -4) = 0
		call 1
		if r0 == 0 goto out
		r6 = 0
	loop:
		r6 += 1
		r6 &= 0xf
		r1 = r0
		r1 += r6
		r3 = *(u8 *)(r1 +0)
		r2 = *(u32 *)(r7 +0)
		if r2 != 0 goto loop
	out:
		r0 = 0
		exit
	`
	p := mapProg(src, testMap16)
	// Loop head: the "r6 += 1" insn after the prologue (the lddw takes
	// two slots) and the counter init: index 9.
	head := 9
	if p.Insns[head].AluOp() != ebpf.AluADD {
		t.Fatalf("loop head index drifted: %v", p.Insns[head])
	}
	v := New(p, Config{InsnLimit: 2000, LoopInvariants: []LoopInvariant{
		{Insn: head, Regs: []RegRange{{Reg: ebpf.R6, UMin: 0, UMax: 0xf}}},
	}})
	if err := v.Verify(); err != nil {
		t.Fatalf("bounded invariant rejected: %v", err)
	}
}

func TestLoopInvariantViolationRejected(t *testing.T) {
	// Declaring a fixpoint the body escapes must be rejected (the
	// verifier validates, never trusts).
	p := mapProg(loopProgSrc)
	v := New(p, Config{InsnLimit: 2000, LoopInvariants: []LoopInvariant{
		{Insn: 2, Regs: []RegRange{{Reg: ebpf.R6, UMin: 0, UMax: 5}}},
	}})
	err := v.Verify()
	if err == nil || !strings.Contains(err.Error(), "invariant violated") {
		t.Fatalf("expected invariant violation, got %v", err)
	}
}

func TestLoopInvariantOnPointerRejected(t *testing.T) {
	p := mapProg(loopProgSrc)
	v := New(p, Config{InsnLimit: 2000, LoopInvariants: []LoopInvariant{
		{Insn: 2, Regs: []RegRange{{Reg: ebpf.R7, UMin: 0, UMax: 5}}},
	}})
	err := v.Verify()
	if err == nil || !strings.Contains(err.Error(), "not a scalar") {
		t.Fatalf("expected scalar-only error, got %v", err)
	}
}
