package verifier

import "bcf/internal/tnum"

// Observer receives a callback before every analyzed instruction. It is
// the instrumentation point for differential soundness testing
// (internal/difftest): the observer records the abstract register file at
// each (path, pc) so a concrete execution can later be checked for
// containment at every step.
//
// Step is invoked with the state on arrival at pc, before the
// instruction's checks and transfer function run. parent is the value
// Step returned for the previous instruction on the same analysis path
// (nil at the entry of the initial path); the returned value identifies
// this step and becomes the parent of its successors, including the first
// step of any path forked at a conditional jump. Observers therefore see
// the full analysis tree, with branch forks sharing their prefix.
//
// The *VState is live verifier state: observers must copy what they keep
// and must not mutate it.
//
// Concurrency: with Config.ParallelPaths > 1, sibling paths are walked by
// different goroutines, so Step is called concurrently — possibly with
// the same parent token, since both sides of a fork descend from the
// forking instruction's token. Observers used with a parallel verifier
// must synchronize their own bookkeeping; tokens themselves are handed
// back unread by the verifier.
type Observer interface {
	Step(parent any, pc int, st *VState) any
}

// Sabotage deliberately weakens the verifier. It exists solely so the
// differential-soundness harness can prove its oracles detect an unsound
// verifier (mutation testing): a harness that stays green while these
// bugs are injected would be vacuous. Never set outside tests.
type Sabotage struct {
	// SkipMemBounds treats failed map-value and stack bounds checks as
	// passed, modeling a missing rejection site.
	SkipMemBounds bool
	// CollapseAddBounds pretends every non-constant 64-bit ADD result is
	// exactly its unsigned minimum, modeling a broken transfer function
	// in the ALU (the tnum and all interval domains become unsound).
	CollapseAddBounds bool
}

// skipsBounds reports whether a failed check of the given kind should be
// ignored under sabotage.
func (s *Sabotage) skipsBounds(k CheckKind) bool {
	return s != nil && s.SkipMemBounds && (k == CheckMapAccess || k == CheckStackAccess)
}

// collapseAdd applies the CollapseAddBounds corruption to an ALU result.
func (s *Sabotage) collapseAdd(r *RegState) {
	if s == nil || !s.CollapseAddBounds || r.Type != Scalar || r.IsConst() {
		return
	}
	v := r.UMin
	r.Var = tnum.Const(v)
	r.UMax = v
	r.SMin, r.SMax = int64(v), int64(v)
	r.U32Min, r.U32Max = uint32(v), uint32(v)
	r.S32Min, r.S32Max = int32(uint32(v)), int32(uint32(v))
}

// Domain names for Admits.
const (
	DomainTnum = "tnum"
	DomainU64  = "u64"
	DomainS64  = "s64"
	DomainU32  = "u32"
	DomainS32  = "s32"
)

// Admits reports whether concrete value v is admitted by the scalar
// abstraction. When it is not, domain names the first violated domain
// (DomainTnum, DomainU64, DomainS64, DomainU32 or DomainS32), letting
// soundness reports pinpoint the broken transfer function.
func (r *RegState) Admits(v uint64) (ok bool, domain string) {
	if !r.Var.Contains(v) {
		return false, DomainTnum
	}
	if v < r.UMin || v > r.UMax {
		return false, DomainU64
	}
	if int64(v) < r.SMin || int64(v) > r.SMax {
		return false, DomainS64
	}
	v32 := uint32(v)
	if v32 < r.U32Min || v32 > r.U32Max {
		return false, DomainU32
	}
	if int32(v32) < r.S32Min || int32(v32) > r.S32Max {
		return false, DomainS32
	}
	return true, ""
}
