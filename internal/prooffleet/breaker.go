package prooffleet

import (
	"sync"
	"time"
)

// BreakerState is the circuit-breaker state of one backend.
type BreakerState uint8

// Breaker states. The numeric values are exported as the
// fleet_breaker_state gauge.
const (
	// BreakerClosed: healthy, all traffic flows.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: cooling off finished; a probationary trickle of
	// requests tests the backend before full traffic resumes.
	BreakerHalfOpen
	// BreakerOpen: the backend is presumed dead; requests are denied
	// without touching the wire until the cooldown elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// breakerConfig tunes one backend's circuit breaker.
type breakerConfig struct {
	// failures in a row trip the breaker Closed→Open.
	failures int
	// cooldown is how long the breaker stays Open before admitting the
	// probationary trickle.
	cooldown time.Duration
	// probation is how many consecutive half-open successes close the
	// breaker; any half-open failure reopens it.
	probation int
	// trickle bounds concurrently-outstanding probationary requests, so
	// a recovering backend is not hit with the full queue at once.
	trickle int
}

// breaker is a three-state circuit breaker (closed → open → half-open).
// State transitions happen on the request path (Allow / Success /
// Failure) and on health-probe outcomes, which report through the same
// Success/Failure methods: an active ping that fails keeps the breaker
// open exactly like a failed prove would.
type breaker struct {
	cfg breakerConfig

	mu          sync.Mutex
	state       BreakerState
	consecFails int       // closed: failures in a row
	openedAt    time.Time // open: when the breaker tripped
	probeOK     int       // half-open: successes so far
	outstanding int       // half-open: trickle slots in use
	opens       int       // lifetime count of Closed/HalfOpen→Open trips
}

func newBreaker(cfg breakerConfig) *breaker {
	if cfg.failures <= 0 {
		cfg.failures = 3
	}
	if cfg.cooldown <= 0 {
		cfg.cooldown = 500 * time.Millisecond
	}
	if cfg.probation <= 0 {
		cfg.probation = 2
	}
	if cfg.trickle <= 0 {
		cfg.trickle = 1
	}
	return &breaker{cfg: cfg}
}

// Allow reports whether a request may be dispatched to the backend now.
// In the half-open state it hands out at most cfg.trickle probationary
// slots; callers that got a slot MUST report Success or Failure so the
// slot is returned.
func (b *breaker) Allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cfg.cooldown {
			return false
		}
		// Cooldown over: move to half-open and hand this caller the
		// first probationary slot.
		b.state = BreakerHalfOpen
		b.probeOK = 0
		b.outstanding = 1
		return true
	case BreakerHalfOpen:
		if b.outstanding >= b.cfg.trickle {
			return false
		}
		b.outstanding++
		return true
	}
	return false
}

// Success reports a request (or probe) that completed cleanly.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consecFails = 0
	case BreakerHalfOpen:
		if b.outstanding > 0 {
			b.outstanding--
		}
		b.probeOK++
		if b.probeOK >= b.cfg.probation {
			b.state = BreakerClosed
			b.consecFails = 0
		}
	}
}

// Failure reports a transport-level failure against the backend.
func (b *breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.consecFails++
		if b.consecFails >= b.cfg.failures {
			b.trip(now)
		}
	case BreakerHalfOpen:
		// Any probationary failure reopens immediately: the backend is
		// not back yet.
		if b.outstanding > 0 {
			b.outstanding--
		}
		b.trip(now)
	case BreakerOpen:
		// A failure while open (e.g. a probe raced the trip) just
		// refreshes the cooldown clock.
		b.openedAt = now
	}
}

// Forgive returns an outstanding probationary slot without counting the
// request as either outcome. Used when a dispatch is cancelled (a hedge
// lost the race, or the caller gave up): the backend's health was never
// actually observed, so neither punishing nor rewarding it is right.
func (b *breaker) Forgive() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.outstanding > 0 {
		b.outstanding--
	}
}

// trip moves to Open. Caller holds b.mu.
func (b *breaker) trip(now time.Time) {
	b.state = BreakerOpen
	b.openedAt = now
	b.consecFails = 0
	b.probeOK = 0
	b.outstanding = 0
	b.opens++
}

// State reports the current state without advancing it.
func (b *breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens reports how many times the breaker has tripped open.
func (b *breaker) Opens() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
