package prooffleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bcf/internal/bcfenc"
	"bcf/internal/bcferr"
	"bcf/internal/expr"
	"bcf/internal/proofd"
)

// startDaemon runs a real proofd server on a fresh Unix socket.
func startDaemon(t *testing.T, opts proofd.Options) (*proofd.Server, string) {
	t.Helper()
	sock := filepath.Join(t.TempDir(), "bcfd.sock")
	return startDaemonAt(t, opts, sock)
}

func startDaemonAt(t *testing.T, opts proofd.Options, sock string) (*proofd.Server, string) {
	t.Helper()
	s := proofd.New(opts)
	os.Remove(sock)
	l, err := net.Listen("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		<-done
	})
	return s, "unix:" + sock
}

// encodedCond builds the wire bytes of the provable condition 0 <= var,
// unique per variable id.
func encodedCond(t *testing.T, varID uint32) []byte {
	t.Helper()
	b, err := bcfenc.EncodeCondition(&bcfenc.Condition{
		Cond: expr.Ule(expr.Const(0, 8), expr.Var(varID, 8)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func falsifiableCond(t *testing.T) []byte {
	t.Helper()
	b, err := bcfenc.EncodeCondition(&bcfenc.Condition{
		Cond: expr.Ule(expr.Var(1, 8), expr.Const(0, 8)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newFleet(t *testing.T, opts Options) *Fleet {
	t.Helper()
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestFleetProveAcrossBackends(t *testing.T) {
	_, ep1 := startDaemon(t, proofd.Options{})
	_, ep2 := startDaemon(t, proofd.Options{})
	_, ep3 := startDaemon(t, proofd.Options{})
	f := newFleet(t, Options{
		Endpoints:     []string{ep1, ep2, ep3},
		ProbeInterval: -1,
	})

	ctx := context.Background()
	for i := uint32(1); i <= 24; i++ {
		proof, err := f.ProveBytes(ctx, encodedCond(t, i))
		if err != nil {
			t.Fatalf("cond %d: %v", i, err)
		}
		if len(proof) == 0 {
			t.Fatalf("cond %d: empty proof", i)
		}
	}
	st := f.Stats()
	if st.Dispatches < 24 {
		t.Fatalf("dispatches = %d, want >= 24", st.Dispatches)
	}
	// Rendezvous hashing should spread 24 distinct keys over 3 backends:
	// nobody gets everything.
	for _, b := range st.Backends {
		if b.Dispatches == 24 {
			t.Fatalf("backend %s got every key; rendezvous spread broken", b.Endpoint)
		}
	}
}

// TestFleetRankDeterministicAndStable: the ranking is a pure function of
// (key, endpoint set), and removing one backend never reorders the
// survivors for any key — the rendezvous property that prevents a dead
// backend's keys from stampeding a single neighbor.
func TestFleetRankDeterministicAndStable(t *testing.T) {
	eps := []string{"unix:/tmp/a", "unix:/tmp/b", "unix:/tmp/c", "unix:/tmp/d"}
	f := newFleet(t, Options{Endpoints: eps, ProbeInterval: -1})
	sub := newFleet(t, Options{Endpoints: eps[:3], ProbeInterval: -1})

	for i := 0; i < 64; i++ {
		key := []byte(fmt.Sprintf("obligation-%d", i))
		r1 := f.rank(key)
		r2 := f.rank(key)
		for j := range r1 {
			if r1[j].id != r2[j].id {
				t.Fatalf("key %d: rank not deterministic", i)
			}
		}
		// Project the 4-backend ranking onto the 3-backend set: the
		// relative order must match the 3-backend fleet's own ranking.
		var projected []string
		for _, b := range r1 {
			if b.id != eps[3] {
				projected = append(projected, b.id)
			}
		}
		r3 := sub.rank(key)
		for j := range r3 {
			if projected[j] != r3[j].id {
				t.Fatalf("key %d: removing a backend reordered survivors (%v vs %v)",
					i, projected, []string{r3[0].id, r3[1].id, r3[2].id})
			}
		}
	}
}

func TestFleetFailoverFromDeadBackend(t *testing.T) {
	_, live := startDaemon(t, proofd.Options{})
	dead := "unix:" + filepath.Join(t.TempDir(), "nobody-home.sock")
	f := newFleet(t, Options{
		Endpoints:      []string{live, dead},
		ConnectTimeout: 200 * time.Millisecond,
		ProbeInterval:  -1,
		HedgeDelay:     -1,
	})

	ctx := context.Background()
	for i := uint32(1); i <= 16; i++ {
		if _, err := f.ProveBytes(ctx, encodedCond(t, i)); err != nil {
			t.Fatalf("cond %d: %v", i, err)
		}
	}
	st := f.Stats()
	if st.Failovers == 0 {
		t.Fatal("no failovers recorded despite a dead backend")
	}
	for _, b := range st.Backends {
		if b.Endpoint == dead && b.State == BreakerClosed && b.BreakerOpens == 0 {
			t.Fatalf("dead backend's breaker never reacted: %+v", b)
		}
	}
}

func TestFleetAllBackendsDeadUnavailable(t *testing.T) {
	dir := t.TempDir()
	f := newFleet(t, Options{
		Endpoints: []string{
			"unix:" + filepath.Join(dir, "a.sock"),
			"unix:" + filepath.Join(dir, "b.sock"),
		},
		ConnectTimeout: 100 * time.Millisecond,
		ProbeInterval:  -1,
		HedgeDelay:     -1,
	})
	_, err := f.ProveBytes(context.Background(), encodedCond(t, 1))
	if !errors.Is(err, bcferr.ErrRemoteUnavailable) {
		t.Fatalf("err = %v, want ErrRemoteUnavailable", err)
	}
}

// TestFleetAuthoritativeCounterexample: a falsifiable condition is an
// authoritative remote outcome — no failover, no fallback signal.
func TestFleetAuthoritativeCounterexample(t *testing.T) {
	_, ep := startDaemon(t, proofd.Options{})
	f := newFleet(t, Options{Endpoints: []string{ep}, ProbeInterval: -1})
	_, err := f.ProveBytes(context.Background(), falsifiableCond(t))
	if err == nil {
		t.Fatal("falsifiable condition proved")
	}
	if errors.Is(err, bcferr.ErrRemoteUnavailable) {
		t.Fatalf("counterexample surfaced as transport failure: %v", err)
	}
	if !errors.Is(err, bcferr.ErrUnsafe) {
		t.Fatalf("err = %v, want ErrUnsafe", err)
	}
}

func TestFleetBackpressure(t *testing.T) {
	_, ep := startDaemon(t, proofd.Options{})
	f := newFleet(t, Options{
		Endpoints:     []string{ep},
		ProbeInterval: -1,
		RatePerSec:    0.001, // refills a token every ~17 minutes
		Burst:         1,
	})
	ctx := context.Background()
	if _, err := f.ProveBytes(ctx, encodedCond(t, 1)); err != nil {
		t.Fatalf("first prove: %v", err)
	}
	_, err := f.ProveBytes(ctx, encodedCond(t, 2))
	if !errors.Is(err, bcferr.ErrBackpressure) {
		t.Fatalf("err = %v, want ErrBackpressure", err)
	}
	if errors.Is(err, bcferr.ErrRemoteUnavailable) {
		t.Fatal("backpressure must not look like unavailability (it would trigger fallback)")
	}
	if st := f.Stats(); st.Backpressure == 0 {
		t.Fatal("backpressure not counted")
	}
}

// TestFleetHedgeSlowPrimary: a key whose primary is deliberately slow
// gets hedged to the fast replica, and the hedge wins.
func TestFleetHedgeSlowPrimary(t *testing.T) {
	_, slow := startDaemon(t, proofd.Options{ChaosDelay: 400 * time.Millisecond})
	_, fast := startDaemon(t, proofd.Options{})
	f := newFleet(t, Options{
		Endpoints:     []string{slow, fast},
		ProbeInterval: -1,
		HedgeDelay:    25 * time.Millisecond,
	})

	// Pick a condition whose rendezvous primary is the slow backend.
	var cond []byte
	for i := uint32(1); ; i++ {
		c := encodedCond(t, i)
		if f.rank(c)[0].id == slow {
			cond = c
			break
		}
	}
	start := time.Now()
	proof, err := f.ProveBytes(context.Background(), cond)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(proof) == 0 {
		t.Fatal("empty proof")
	}
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("prove took %v; hedge did not rescue the slow primary", elapsed)
	}
	st := f.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedges=%d hedgeWins=%d, want both > 0", st.Hedges, st.HedgeWins)
	}
}

// TestFleetByzantineBackendFailsOver: a backend returning garbage proof
// bytes is detected by the client-side sanity decode and the key fails
// over to an honest replica.
func TestFleetByzantineBackendFailsOver(t *testing.T) {
	_, ep1 := startDaemon(t, proofd.Options{})
	_, ep2 := startDaemon(t, proofd.Options{})
	liar := ep1
	f := newFleet(t, Options{
		Endpoints:     []string{ep1, ep2},
		ProbeInterval: -1,
		HedgeDelay:    -1,
		Fault:         corruptBackend{backend: liar},
	})
	ctx := context.Background()
	for i := uint32(1); i <= 8; i++ {
		proof, err := f.ProveBytes(ctx, encodedCond(t, i))
		if err != nil {
			t.Fatalf("cond %d: %v", i, err)
		}
		if len(proof) == 0 {
			t.Fatalf("cond %d: empty proof", i)
		}
	}
	st := f.Stats()
	if st.Byzantine == 0 {
		t.Fatal("byzantine replies not detected")
	}
	if st.Failovers == 0 {
		t.Fatal("byzantine replies did not fail over")
	}
}

// corruptBackend flips proof bytes from one backend (byzantine prover).
type corruptBackend struct{ backend string }

func (c corruptBackend) FleetDispatch(string, int) error        { return nil }
func (c corruptBackend) FleetDelay(string, int) time.Duration   { return 0 }
func (c corruptBackend) FleetProof(b string, _ int, p []byte) []byte {
	if b != c.backend || len(p) == 0 {
		return p
	}
	out := bytes.Clone(p)
	for i := range out {
		out[i] ^= 0xFF
	}
	return out
}

// TestFleetBreakerRecovery: kill a backend, watch its breaker open, then
// restart it on the same socket and watch active probes walk the breaker
// through half-open back to closed.
func TestFleetBreakerRecovery(t *testing.T) {
	dir := t.TempDir()
	sock := filepath.Join(dir, "flappy.sock")
	s1, ep := startDaemonAt(t, proofd.Options{}, sock)
	f := newFleet(t, Options{
		Endpoints:       []string{ep},
		ConnectTimeout:  100 * time.Millisecond,
		ProbeInterval:   20 * time.Millisecond,
		BreakerFailures: 2,
		BreakerCooldown: 100 * time.Millisecond,
		HedgeDelay:      -1,
	})
	ctx := context.Background()
	if _, err := f.ProveBytes(ctx, encodedCond(t, 1)); err != nil {
		t.Fatalf("warm prove: %v", err)
	}

	// Kill the backend; probes and failed proves should trip the breaker.
	sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	s1.Shutdown(sctx)
	cancel()
	deadline := time.Now().Add(10 * time.Second)
	for f.backends[0].breaker.State() != BreakerOpen {
		f.ProveBytes(ctx, encodedCond(t, 2)) // feed the breaker
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened after backend death")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Restart on the same socket; probes must close the breaker again.
	startDaemonAt(t, proofd.Options{}, sock)
	for f.backends[0].breaker.State() != BreakerClosed {
		if time.Now().After(deadline) {
			t.Fatalf("breaker stuck %v after backend restart", f.backends[0].breaker.State())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := f.ProveBytes(ctx, encodedCond(t, 3)); err != nil {
		t.Fatalf("prove after recovery: %v", err)
	}
	if f.Stats().Backends[0].BreakerOpens == 0 {
		t.Fatal("breaker opens not counted")
	}
}

// TestFleetConcurrentLoad drives many goroutines through one fleet to
// give the race detector something to chew on.
func TestFleetConcurrentLoad(t *testing.T) {
	_, ep1 := startDaemon(t, proofd.Options{})
	_, ep2 := startDaemon(t, proofd.Options{})
	f := newFleet(t, Options{
		Endpoints:     []string{ep1, ep2},
		ProbeInterval: 10 * time.Millisecond,
	})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				cond := encodedCond(t, uint32(g*100+i+1))
				if _, err := f.ProveBytes(context.Background(), cond); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(breakerConfig{failures: 2, cooldown: time.Second, probation: 2, trickle: 1})
	if !b.Allow(now) || b.State() != BreakerClosed {
		t.Fatal("fresh breaker not closed")
	}
	b.Failure(now)
	if b.State() != BreakerClosed {
		t.Fatal("one failure tripped a threshold-2 breaker")
	}
	b.Failure(now)
	if b.State() != BreakerOpen {
		t.Fatal("threshold failures did not trip")
	}
	if b.Allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("open breaker allowed during cooldown")
	}
	// Cooldown over: first Allow takes the probationary slot...
	if !b.Allow(now.Add(2 * time.Second)) {
		t.Fatal("half-open denied first probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatal("not half-open after cooldown")
	}
	// ...and the trickle bound denies a second concurrent one.
	if b.Allow(now.Add(2 * time.Second)) {
		t.Fatal("trickle bound ignored")
	}
	b.Success()
	if !b.Allow(now.Add(2*time.Second)) {
		t.Fatal("slot not returned after success")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("probation quota met but breaker not closed")
	}

	// Half-open failure reopens immediately.
	b.Failure(now.Add(3 * time.Second))
	b.Failure(now.Add(3 * time.Second))
	if !b.Allow(now.Add(5 * time.Second)) {
		t.Fatal("half-open denied after second cooldown")
	}
	b.Failure(now.Add(5 * time.Second))
	if b.State() != BreakerOpen {
		t.Fatal("half-open failure did not reopen")
	}
	if b.Opens() != 3 {
		t.Fatalf("opens = %d, want 3", b.Opens())
	}

	// Forgive returns the slot without judging the backend.
	if !b.Allow(now.Add(10 * time.Second)) {
		t.Fatal("half-open denied after third cooldown")
	}
	b.Forgive()
	if b.State() != BreakerHalfOpen {
		t.Fatal("forgive changed state")
	}
	if !b.Allow(now.Add(10 * time.Second)) {
		t.Fatal("forgiven slot not reusable")
	}
}

func TestAdmissionTokenBucket(t *testing.T) {
	now := time.Unix(1000, 0)
	a := newAdmission(2, 2, 0, now) // 2/s, burst 2, unlimited inflight
	if err := a.Admit(now); err != nil {
		t.Fatal(err)
	}
	if err := a.Admit(now); err != nil {
		t.Fatal(err)
	}
	if err := a.Admit(now); !errors.Is(err, bcferr.ErrBackpressure) {
		t.Fatalf("burst exceeded but err = %v", err)
	}
	// Half a second refills one token at 2/s.
	if err := a.Admit(now.Add(500 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	b := newAdmission(0, 0, 1, now) // inflight bound only
	if err := b.Admit(now); err != nil {
		t.Fatal(err)
	}
	if err := b.Admit(now); !errors.Is(err, bcferr.ErrBackpressure) {
		t.Fatalf("inflight exceeded but err = %v", err)
	}
	b.Release()
	if err := b.Admit(now); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyDigestPercentile(t *testing.T) {
	d := newLatencyDigest()
	if d.Percentile(99) != 0 {
		t.Fatal("empty digest nonzero")
	}
	for i := 1; i <= 100; i++ {
		d.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := d.Percentile(50); got < 45*time.Millisecond || got > 55*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := d.Percentile(99); got < 95*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	// Overflow the ring: old samples age out.
	for i := 0; i < latencyWindow; i++ {
		d.Observe(time.Second)
	}
	if got := d.Percentile(50); got != time.Second {
		t.Fatalf("p50 after overwrite = %v", got)
	}
}
