package prooffleet

import (
	"context"
	"testing"
	"time"

	"bcf/internal/bcf"
	"bcf/internal/bcferr"
	"bcf/internal/corpus"
	"bcf/internal/faultinject"
	"bcf/internal/loader"
	"bcf/internal/proofd"
)

// chaosLoadOpts mirrors the remote-proving soak configuration: generous
// deadlines so a hang is distinguishable from slowness.
func chaosLoadOpts(remote loader.RemoteProver) loader.Options {
	return loader.Options{
		EnableBCF:    true,
		Remote:       remote,
		LoadTimeout:  20 * time.Second,
		ProveTimeout: 5 * time.Second,
		MaxRounds:    256,
		Session:      bcf.SessionLimits{ResumeTimeout: 10 * time.Second},
	}
}

// faultyFleet builds a 3-backend fleet wired to the injector, with
// breaker and timeouts tightened so a soak iterates quickly.
func faultyFleet(t *testing.T, endpoints []string, inj *faultinject.Injector) *Fleet {
	t.Helper()
	var hook FaultHook
	if inj != nil {
		hook = inj
	}
	f, err := New(Options{
		Endpoints:       endpoints,
		ConnectTimeout:  500 * time.Millisecond,
		RequestTimeout:  5 * time.Second,
		ProbeInterval:   25 * time.Millisecond,
		BreakerCooldown: 100 * time.Millisecond,
		HedgeDelay:      20 * time.Millisecond,
		Fault:           hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestChaosFleetProving is the fleet soak: a slice of the §6 corpus is
// loaded against three real daemons while the injector flaps backends,
// partitions the client from a seeded subset, slows replies to a
// trickle and corrupts proofs (byzantine backends). Invariants, per
// (program, schedule) pair:
//
//  1. termination — no injected fleet fault may hang a load;
//  2. degradation — every fault ends in a classified error, a failover
//     to a replica, or a fallback to the in-process solver, never in
//     limbo;
//  3. soundness — an accept under injection implies the clean
//     in-process load of the same program also accepts: the kernel-side
//     checker guards every proof regardless of which backend (honest or
//     byzantine) produced it.
func TestChaosFleetProving(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	entries := corpus.Generate()
	_, ep1 := startDaemon(t, proofd.Options{})
	_, ep2 := startDaemon(t, proofd.Options{})
	_, ep3 := startDaemon(t, proofd.Options{})
	endpoints := []string{ep1, ep2, ep3}

	for i := 0; i < len(entries); i += 64 { // 8 programs across families
		e := entries[i]
		clean := loader.Load(e.Prog, chaosLoadOpts(nil))

		for s := int64(0); s < 5; s++ {
			seed := s*31 + int64(i)
			inj := faultinject.New(seed)
			switch s {
			case 0:
				inj.Arm(faultinject.FleetFlap) // every dispatch: backend dies mid-request
			case 1:
				inj.Arm(faultinject.FleetPartition) // seeded subset unreachable
			case 2:
				inj.Arm(faultinject.FleetSlow).SetDelay(10 * time.Millisecond)
			case 3:
				inj.Arm(faultinject.FleetByzantine) // every proof reply corrupted
			case 4:
				// Mixed: flap the first dispatches, then byzantine replies.
				inj.Arm(faultinject.FleetFlap, 0, 1).Arm(faultinject.FleetByzantine, 2, 3)
			}
			fleet := faultyFleet(t, endpoints, inj)

			start := time.Now()
			res := loader.Load(e.Prog, chaosLoadOpts(fleet))
			elapsed := time.Since(start)

			if elapsed > 30*time.Second {
				t.Fatalf("%s seed %d: load ran %v, past its deadline", e.Prog.Name, seed, elapsed)
			}
			if res.Accepted {
				if res.ErrClass != bcferr.ClassNone {
					t.Fatalf("%s seed %d: accepted but classified %v", e.Prog.Name, seed, res.ErrClass)
				}
				if !clean.Accepted {
					t.Fatalf("%s seed %d: ACCEPTED under fleet faults %v but the clean load rejects",
						e.Prog.Name, seed, inj.Events())
				}
			} else {
				if res.ErrClass == bcferr.ClassNone {
					t.Fatalf("%s seed %d: unclassified rejection: %v (faults %v)",
						e.Prog.Name, seed, res.Err, inj.Events())
				}
				if res.Err == nil {
					t.Fatalf("%s seed %d: rejected with nil error", e.Prog.Name, seed)
				}
			}
			// Degradation accounting. With every dispatch flapped
			// (schedule 0) no backend can answer: an accepted load must
			// have fallen back in process for each obligation. Byzantine
			// corruption (schedule 3) is weaker — a flip landing in the
			// reply's source byte leaves the proof intact, so a remote
			// success is legitimate; the soundness invariant above still
			// binds it, and any fallback that did happen must trace back
			// to a detected byzantine reply (nothing else was armed).
			if s == 0 && res.RemoteProofs != 0 {
				t.Fatalf("%s seed %d: %d remote proofs despite every dispatch being flapped",
					e.Prog.Name, seed, res.RemoteProofs)
			}
			if s == 0 && inj.FiredAny() && res.Accepted && res.RemoteFallbacks == 0 {
				t.Fatalf("%s seed %d: faults fired (%v) but no fallback recorded",
					e.Prog.Name, seed, inj.Events())
			}
			if s == 3 && res.RemoteFallbacks > 0 && fleet.Stats().Byzantine == 0 {
				t.Fatalf("%s seed %d: fell back %d times under a byzantine-only schedule without detecting corruption",
					e.Prog.Name, seed, res.RemoteFallbacks)
			}
		}
	}
}

// TestChaosFleetBackendKilledAndRestarted kills one of three daemons
// mid-run and later restarts it: loads keep completing throughout (via
// failover or fallback) and verdicts never change.
func TestChaosFleetBackendKilledAndRestarted(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	entries := corpus.Generate()
	var progs []int
	for i := 0; i < len(entries) && len(progs) < 6; i += 32 {
		progs = append(progs, i)
	}

	_, ep1 := startDaemon(t, proofd.Options{})
	_, ep2 := startDaemon(t, proofd.Options{})
	victimSock := t.TempDir() + "/victim.sock"
	victim, ep3 := startDaemonAt(t, proofd.Options{}, victimSock)

	fleet := faultyFleet(t, []string{ep1, ep2, ep3}, nil)

	verdict := func(i int) bool {
		res := loader.Load(entries[i].Prog, chaosLoadOpts(fleet))
		if !res.Accepted && res.ErrClass == bcferr.ClassNone {
			t.Fatalf("%s: unclassified rejection: %v", entries[i].Prog.Name, res.Err)
		}
		return res.Accepted
	}
	clean := make(map[int]bool, len(progs))
	for _, i := range progs {
		clean[i] = loader.Load(entries[i].Prog, chaosLoadOpts(nil)).Accepted
	}

	phase := 0
	for _, i := range progs {
		phase++
		switch phase {
		case 2: // kill the victim mid-run
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if err := victim.Shutdown(ctx); err != nil {
				t.Fatalf("victim shutdown: %v", err)
			}
			cancel()
		case 4: // resurrect it on the same socket
			startDaemonAt(t, proofd.Options{}, victimSock)
		}
		if got := verdict(i); got != clean[i] {
			t.Fatalf("%s: verdict %v during phase %d, clean load says %v",
				entries[i].Prog.Name, got, phase, clean[i])
		}
	}
}

// TestFleetFailoverDeterminism is the S3 acceptance test: the same
// corpus against the same topology produces identical accept/reject
// verdicts no matter which backends are killed mid-run. Resilience
// machinery may change *where* proofs come from, never *whether* a
// program loads.
func TestFleetFailoverDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("determinism soak skipped in -short mode")
	}
	entries := corpus.Generate()
	var progs []int
	for i := 0; i < len(entries) && len(progs) < 8; i += 48 {
		progs = append(progs, i)
	}

	// run loads the corpus slice against a fresh 3-daemon topology,
	// killing the daemon at index kill (if >= 0) halfway through.
	run := func(kill int) map[int]bool {
		var servers []*proofd.Server
		var endpoints []string
		for j := 0; j < 3; j++ {
			s, ep := startDaemon(t, proofd.Options{})
			servers = append(servers, s)
			endpoints = append(endpoints, ep)
		}
		fleet := faultyFleet(t, endpoints, nil)
		verdicts := make(map[int]bool, len(progs))
		for n, i := range progs {
			if kill >= 0 && n == len(progs)/2 {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				if err := servers[kill].Shutdown(ctx); err != nil {
					t.Fatalf("killing backend %d: %v", kill, err)
				}
				cancel()
			}
			res := loader.Load(entries[i].Prog, chaosLoadOpts(fleet))
			if !res.Accepted && res.ErrClass == bcferr.ClassNone {
				t.Fatalf("%s: unclassified rejection: %v", entries[i].Prog.Name, res.Err)
			}
			verdicts[i] = res.Accepted
		}
		return verdicts
	}

	baseline := run(-1)
	for kill := 0; kill < 3; kill++ {
		got := run(kill)
		for _, i := range progs {
			if got[i] != baseline[i] {
				t.Fatalf("%s: verdict %v with backend %d killed mid-run, %v with all alive",
					entries[i].Prog.Name, got[i], kill, baseline[i])
			}
		}
	}
}
