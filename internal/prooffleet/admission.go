package prooffleet

import (
	"sync"
	"time"

	"bcf/internal/bcferr"
)

// admission is the fleet client's admission controller: a token bucket
// bounds the sustained dispatch rate and an inflight counter bounds
// concurrency. Neither blocks — an obligation that cannot be admitted is
// rejected immediately with bcferr.ErrBackpressure, and the *loader*
// decides how to wait (a bounded queue with jittered retries), so the
// queueing policy lives in exactly one place.
type admission struct {
	mu sync.Mutex

	// Token bucket (rate <= 0 disables it).
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time

	// Inflight bound (maxInflight <= 0 disables it).
	maxInflight int
	inflight    int
}

func newAdmission(rate float64, burst int, maxInflight int, now time.Time) *admission {
	b := float64(burst)
	if rate > 0 && b <= 0 {
		b = rate // default burst: one second of rate
	}
	return &admission{
		rate:        rate,
		burst:       b,
		tokens:      b,
		last:        now,
		maxInflight: maxInflight,
	}
}

// Admit takes one admission slot, or reports ErrBackpressure. Callers
// that were admitted MUST call Release exactly once.
func (a *admission) Admit(now time.Time) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.maxInflight > 0 && a.inflight >= a.maxInflight {
		return bcferr.ErrBackpressure
	}
	if a.rate > 0 {
		elapsed := now.Sub(a.last).Seconds()
		if elapsed > 0 {
			a.tokens += elapsed * a.rate
			if a.tokens > a.burst {
				a.tokens = a.burst
			}
			a.last = now
		}
		if a.tokens < 1 {
			return bcferr.ErrBackpressure
		}
		a.tokens--
	}
	a.inflight++
	return nil
}

// Release returns an admission slot.
func (a *admission) Release() {
	a.mu.Lock()
	if a.inflight > 0 {
		a.inflight--
	}
	a.mu.Unlock()
}

// Inflight reports the obligations currently inside admission.
func (a *admission) Inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}
