package prooffleet

import (
	"sort"
	"sync"
	"time"
)

// healthTracker is the passive half of a backend's health signal: an
// exponentially-weighted error rate over recent request outcomes. The
// active half (ping probes) and this passive half both feed the same
// circuit breaker; the tracker additionally exposes the smoothed rate
// for observability and tests.
type healthTracker struct {
	mu sync.Mutex
	// errRate is the EWMA of failures (1 = every recent request failed).
	errRate float64
	// alpha is the smoothing factor per observation.
	alpha float64
	// observations counts outcomes folded in.
	observations int
}

func newHealthTracker() *healthTracker {
	return &healthTracker{alpha: 0.2}
}

// Observe folds one request outcome into the error rate.
func (h *healthTracker) Observe(failed bool) {
	v := 0.0
	if failed {
		v = 1.0
	}
	h.mu.Lock()
	h.errRate = (1-h.alpha)*h.errRate + h.alpha*v
	h.observations++
	h.mu.Unlock()
}

// ErrorRate reports the smoothed failure rate in [0, 1].
func (h *healthTracker) ErrorRate() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.errRate
}

// latencyDigest is a bounded ring of recent successful-request latencies
// from which hedge delays are derived. Percentile queries copy and sort
// the (small) window; the prove path only appends, so the hot-path cost
// is one lock and one store.
type latencyDigest struct {
	mu      sync.Mutex
	samples []time.Duration
	next    int
	full    bool
}

const latencyWindow = 256

func newLatencyDigest() *latencyDigest {
	return &latencyDigest{samples: make([]time.Duration, latencyWindow)}
}

// Observe records one successful request latency.
func (d *latencyDigest) Observe(v time.Duration) {
	d.mu.Lock()
	d.samples[d.next] = v
	d.next++
	if d.next == len(d.samples) {
		d.next = 0
		d.full = true
	}
	d.mu.Unlock()
}

// Count reports how many samples the window holds.
func (d *latencyDigest) Count() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.full {
		return len(d.samples)
	}
	return d.next
}

// Percentile reports the p-th percentile (p in [0, 100]) of the window,
// 0 when empty.
func (d *latencyDigest) Percentile(p float64) time.Duration {
	d.mu.Lock()
	n := d.next
	if d.full {
		n = len(d.samples)
	}
	if n == 0 {
		d.mu.Unlock()
		return 0
	}
	buf := make([]time.Duration, n)
	copy(buf, d.samples[:n])
	d.mu.Unlock()

	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	idx := int(p / 100 * float64(n-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return buf[idx]
}
