// Package prooffleet is the resilient multi-daemon proving client: it
// spreads the content-addressed obligation key space across N bcfd
// backends by rendezvous hashing and wraps every dispatch in a full
// resilience stack — per-backend health (active ping/health probes plus
// passive error-rate tracking) feeding a three-state circuit breaker,
// hedged requests for slow keys, token-bucket + inflight admission
// control with typed backpressure, and rendezvous-rehash failover so a
// dead backend's key range migrates to the survivors without
// stampeding any single one of them.
//
// The design leans entirely on the paper's trust argument: the kernel
// re-checks every proof, so the proving tier can be aggressively
// fault-tolerant with zero soundness risk. A backend may lie, hang, die
// or return garbage; the worst it can cost is latency, because every
// degradation path ends at the loader's transparent in-process fallback
// (the terminal state of the degradation ladder) and every accepted
// proof still passes the kernel-side checker.
package prooffleet

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bcf/internal/bcferr"
	"bcf/internal/obs"
	"bcf/internal/proofrpc"
)

// Fleet defaults.
const (
	DefaultConnectTimeout  = 1 * time.Second
	DefaultRequestTimeout  = 30 * time.Second
	DefaultProbeInterval   = 250 * time.Millisecond
	DefaultHedgePercentile = 90.0
	DefaultHedgeMinSamples = 16
	DefaultHedgeMinDelay   = 1 * time.Millisecond
	DefaultMaxInflight     = 256
)

// FaultHook intercepts fleet dispatches (test instrumentation;
// internal/faultinject implements it). A nil hook costs nothing. seq is
// the fleet-wide dispatch sequence number, so schedules can target
// specific dispatches; backend is the endpoint string.
type FaultHook interface {
	// FleetDispatch runs before a request is written to a backend; a
	// non-nil error models the backend being unreachable (flap or
	// partition).
	FleetDispatch(backend string, seq int) error
	// FleetDelay may stall the backend's reply (slow trickle).
	FleetDelay(backend string, seq int) time.Duration
	// FleetProof may replace the reply payload (byzantine backend
	// returning corrupt proof bytes).
	FleetProof(backend string, seq int, payload []byte) []byte
}

// Options configure a Fleet.
type Options struct {
	// Endpoints are the bcfd backends ("unix:/path" or "host:port"; see
	// proofrpc.ParseAddr). At least one is required.
	Endpoints []string

	// ConnectTimeout bounds each dial (0 = DefaultConnectTimeout).
	ConnectTimeout time.Duration
	// RequestTimeout bounds each dispatch end to end, in addition to the
	// caller's context (0 = DefaultRequestTimeout).
	RequestTimeout time.Duration

	// HedgeDelay, when positive, is a fixed delay after which a second
	// backend is tried for a still-unanswered obligation. Zero derives
	// the delay from the observed latency distribution (HedgePercentile
	// of recent successes); negative disables hedging.
	HedgeDelay time.Duration
	// HedgePercentile picks the latency percentile the derived hedge
	// delay tracks (0 = DefaultHedgePercentile).
	HedgePercentile float64
	// HedgeMinSamples is how many latency samples must accumulate before
	// derived hedging arms (0 = DefaultHedgeMinSamples).
	HedgeMinSamples int

	// MaxInflight bounds concurrently-admitted obligations
	// (0 = DefaultMaxInflight; negative = unlimited).
	MaxInflight int
	// RatePerSec, when positive, bounds the sustained dispatch rate with
	// a token bucket of the given Burst (Burst 0 = one second of rate).
	RatePerSec float64
	Burst      int

	// ProbeInterval is the active health-probe period (0 =
	// DefaultProbeInterval; negative disables active probing).
	ProbeInterval time.Duration

	// BreakerFailures consecutive transport failures trip a backend's
	// breaker open (0 = 3). BreakerCooldown is the open dwell time
	// before the probationary trickle (0 = 500ms). BreakerProbation is
	// how many trickle successes close it again (0 = 2).
	BreakerFailures  int
	BreakerCooldown  time.Duration
	BreakerProbation int

	// Obs and Trace, when non-nil, receive fleet metrics and spans.
	Obs   *obs.Registry
	Trace *obs.Tracer
	// Fault injects fleet faults (tests only).
	Fault FaultHook
}

// Fleet is a multi-daemon proving client. It implements
// loader.RemoteProver: ProveBytes consistent-hashes the obligation onto
// a backend and degrades through hedging, failover and (by returning
// bcferr.ErrRemoteUnavailable) the loader's in-process fallback.
// Admission-control rejections return bcferr.ErrBackpressure, which the
// loader converts into a bounded wait, not a failure.
type Fleet struct {
	opts     Options
	backends []*backend
	admit    *admission
	lat      *latencyDigest

	seq atomic.Int64 // fleet-wide dispatch sequence (fault schedules)

	dispatches   atomic.Int64
	failovers    atomic.Int64
	hedges       atomic.Int64
	hedgeWins    atomic.Int64
	backpressure atomic.Int64
	byzantine    atomic.Int64

	probeStop chan struct{}
	probeDone chan struct{}

	mu     sync.Mutex
	closed bool
}

// backend is one bcfd daemon: its multiplexed connection (redialed on
// poisoning), circuit breaker and health signals.
type backend struct {
	id            string // endpoint as configured (metrics label, hashing)
	network, addr string

	breaker *breaker
	health  *healthTracker

	draining   atomic.Bool
	dispatches atomic.Int64

	// lastBreakerState is the breaker state last seen by noteBreaker, so
	// transitions (not steady states) reach the flight recorder.
	lastBreakerState atomic.Int32

	mu   sync.Mutex
	conn *proofrpc.MuxConn
}

// noteBreaker journals a breaker state transition the moment it is
// observed (the breaker itself has no callback hook; every path that
// feeds it passes through here right after).
func (f *Fleet) noteBreaker(b *backend) {
	st := int32(b.breaker.State())
	if prev := b.lastBreakerState.Swap(st); prev != st {
		if j := f.opts.Obs.Journal(); j != nil {
			j.Recordf(obs.JKindBreaker, "fleet", int64(st),
				"backend %s: %s -> %s", b.id, BreakerState(prev).String(), BreakerState(st).String())
		}
	}
}

// New builds a fleet client over the given backends. It does not dial
// until the first request or probe.
func New(opts Options) (*Fleet, error) {
	if len(opts.Endpoints) == 0 {
		return nil, fmt.Errorf("prooffleet: no endpoints")
	}
	if opts.ConnectTimeout <= 0 {
		opts.ConnectTimeout = DefaultConnectTimeout
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = DefaultRequestTimeout
	}
	if opts.HedgePercentile <= 0 {
		opts.HedgePercentile = DefaultHedgePercentile
	}
	if opts.HedgeMinSamples <= 0 {
		opts.HedgeMinSamples = DefaultHedgeMinSamples
	}
	if opts.MaxInflight == 0 {
		opts.MaxInflight = DefaultMaxInflight
	}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = DefaultProbeInterval
	}

	f := &Fleet{
		opts:  opts,
		admit: newAdmission(opts.RatePerSec, opts.Burst, opts.MaxInflight, time.Now()),
		lat:   newLatencyDigest(),
	}
	bcfg := breakerConfig{
		failures:  opts.BreakerFailures,
		cooldown:  opts.BreakerCooldown,
		probation: opts.BreakerProbation,
	}
	for _, ep := range opts.Endpoints {
		network, addr, err := proofrpc.ParseAddr(ep)
		if err != nil {
			return nil, fmt.Errorf("prooffleet: endpoint %q: %w", ep, err)
		}
		f.backends = append(f.backends, &backend{
			id:      ep,
			network: network,
			addr:    addr,
			breaker: newBreaker(bcfg),
			health:  newHealthTracker(),
		})
	}
	if opts.ProbeInterval > 0 {
		f.probeStop = make(chan struct{})
		f.probeDone = make(chan struct{})
		go f.probeLoop()
	}
	return f, nil
}

// Close stops the prober and drops every backend connection. In-flight
// requests fail as transport errors (the loader falls back in process).
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.mu.Unlock()
	if f.probeStop != nil {
		close(f.probeStop)
		<-f.probeDone
	}
	for _, b := range f.backends {
		b.mu.Lock()
		if b.conn != nil {
			b.conn.Close()
			b.conn = nil
		}
		b.mu.Unlock()
	}
	return nil
}

// unavailable wraps a fleet-level failure so that
// errors.Is(err, bcferr.ErrRemoteUnavailable) holds.
func unavailable(format string, args ...any) error {
	return fmt.Errorf(format+": %w", append(args, bcferr.ErrRemoteUnavailable)...)
}

// rank orders backends for a key by rendezvous (highest-random-weight)
// hashing: every backend is scored by hash(key, backend) and sorted
// descending. The ordering is a pure function of (key, endpoint set), so
// every client agrees on a key's primary — cache affinity — and when a
// backend dies its keys migrate to their individual second choices,
// spreading the orphaned range across all survivors instead of
// stampeding a single neighbor. Draining backends sink to the back of
// the order without changing the relative ranking of the rest.
func (f *Fleet) rank(key []byte) []*backend {
	type scored struct {
		b     *backend
		score uint64
	}
	sc := make([]scored, len(f.backends))
	for i, b := range f.backends {
		h := fnv.New64a()
		h.Write(key)
		h.Write([]byte(b.id))
		sc[i] = scored{b, h.Sum64()}
	}
	sort.Slice(sc, func(i, j int) bool {
		di, dj := sc[i].b.draining.Load(), sc[j].b.draining.Load()
		if di != dj {
			return !di // non-draining first
		}
		return sc[i].score > sc[j].score
	})
	out := make([]*backend, len(sc))
	for i, s := range sc {
		out[i] = s.b
	}
	return out
}

// hedgeDelay derives the current hedge delay: a fixed configured value,
// or the configured percentile of recently observed latencies once
// enough samples exist. Zero means "don't hedge this request".
func (f *Fleet) hedgeDelay() time.Duration {
	if f.opts.HedgeDelay < 0 {
		return 0
	}
	if f.opts.HedgeDelay > 0 {
		return f.opts.HedgeDelay
	}
	if f.lat.Count() < f.opts.HedgeMinSamples {
		return 0
	}
	d := f.lat.Percentile(f.opts.HedgePercentile)
	if d < DefaultHedgeMinDelay {
		d = DefaultHedgeMinDelay
	}
	if max := f.opts.RequestTimeout / 2; d > max {
		d = max
	}
	return d
}

// Ping probes the first reachable backend (connectivity check).
func (f *Fleet) Ping(ctx context.Context) error {
	var lastErr error
	for _, b := range f.backends {
		conn, err := b.muxConn(f.opts.ConnectTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		if err := conn.Ping(ctx); err != nil {
			lastErr = err
			continue
		}
		return nil
	}
	return unavailable("prooffleet: ping: %v", lastErr)
}

// ProveBytes ships one encoded condition to the fleet and returns the
// encoded proof. It implements loader.RemoteProver; see the Fleet doc
// for the error contract.
func (f *Fleet) ProveBytes(ctx context.Context, cond []byte) ([]byte, error) {
	if err := f.admit.Admit(time.Now()); err != nil {
		f.backpressure.Add(1)
		f.opts.Obs.Counter(obs.MFleetBackpressure).Inc()
		return nil, fmt.Errorf("prooffleet: admission: %w", err)
	}
	f.opts.Obs.Gauge(obs.MFleetInflight).Add(1)
	defer func() {
		f.opts.Obs.Gauge(obs.MFleetInflight).Add(-1)
		f.admit.Release()
	}()

	var t0 time.Time
	if f.opts.Obs != nil {
		t0 = time.Now()
	}
	sp := f.opts.Trace.StartUnder(obs.SpanFromContext(ctx), obs.CatRPC, "fleet-prove")
	out, err := f.dispatch(ctx, cond, sp.Context())
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	sp.EndArgs(map[string]any{"outcome": outcome})
	if f.opts.Obs != nil {
		f.opts.Obs.StageHistogram(obs.MFleetSeconds).Since(t0)
	}
	return out, err
}

// outcome is one backend attempt's result.
type outcome struct {
	proof     []byte
	err       error
	transport bool
	hedge     bool
}

// dispatch drives one obligation through the resilience stack: primary
// by rendezvous rank, a hedge to the next-ranked backend when the
// primary is slow (first answer wins, loser cancelled), and failover
// down the ranking on transport failures. Authoritative answers
// (proofs, counterexamples, remote solver errors) end the dispatch
// immediately; exhausting every backend reports
// bcferr.ErrRemoteUnavailable so the loader falls back in process.
func (f *Fleet) dispatch(ctx context.Context, cond []byte, tc obs.TraceContext) ([]byte, error) {
	ranked := f.rank(cond)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel() // releases the hedge loser

	results := make(chan outcome, len(ranked))
	next, launched := 0, 0
	launch := func(hedge bool) bool {
		for next < len(ranked) {
			b := ranked[next]
			next++
			if !b.breaker.Allow(time.Now()) {
				// Breaker rejections are instants, not spans: nothing ran,
				// but the trace should show the road not taken.
				f.opts.Trace.WithParent(tc).Instant(obs.CatRPC, "breaker-reject",
					map[string]any{"backend": b.id})
				continue
			}
			launched++
			go func(b *backend) {
				proof, err, transport := f.proveOn(cctx, b, cond, hedge, tc)
				results <- outcome{proof, err, transport, hedge}
			}(b)
			return true
		}
		return false
	}

	if !launch(false) {
		return nil, unavailable("prooffleet: every backend's breaker is open")
	}
	var hedgeTimer *time.Timer
	var hedgeFire <-chan time.Time
	if d := f.hedgeDelay(); d > 0 && next < len(ranked) {
		hedgeTimer = time.NewTimer(d)
		hedgeFire = hedgeTimer.C
		defer hedgeTimer.Stop()
	}

	var lastErr error
	for launched > 0 {
		select {
		case <-ctx.Done():
			return nil, unavailable("prooffleet: %v", ctx.Err())
		case <-hedgeFire:
			hedgeFire = nil
			if launch(true) {
				f.hedges.Add(1)
				f.opts.Obs.Counter(obs.MFleetHedges).Inc()
			}
		case o := <-results:
			launched--
			switch {
			case o.err == nil:
				if o.hedge {
					f.hedgeWins.Add(1)
					f.opts.Obs.Counter(obs.MFleetHedgeWins).Inc()
					f.opts.Trace.WithParent(tc).Instant(obs.CatRPC, "hedge-win", nil)
					if j := f.opts.Obs.Journal(); j != nil {
						j.Record(obs.JKindHedge, "fleet", "hedge beat primary", 1)
					}
				}
				return o.proof, nil
			case !o.transport:
				// Authoritative remote outcome: counterexample or solver
				// error. No failover — every backend runs the same
				// deterministic solver.
				return nil, o.err
			default:
				lastErr = o.err
				if launch(o.hedge) {
					f.failovers.Add(1)
					f.opts.Obs.Counter(obs.MFleetFailovers).Inc()
				}
			}
		}
	}
	return nil, lastErr
}

// proveOn runs one obligation against one backend, recording breaker,
// health and latency signals. transport=true marks wire failures (the
// dispatch loop fails over); a cancelled context is *forgiven* — a
// hedge loser is not evidence the backend is unhealthy. Each attempt is
// its own child span under the fleet-prove span (tc), so a hedged
// dispatch shows as sibling spans — the one that ends outcome=proof
// won, a loser ends outcome=cancelled. The span ends inside this
// function because a losing attempt may still be running after dispatch
// has returned the winner.
func (f *Fleet) proveOn(ctx context.Context, b *backend, cond []byte, hedge bool, tc obs.TraceContext) (proof []byte, err error, transport bool) {
	seq := int(f.seq.Add(1) - 1)
	b.dispatches.Add(1)
	f.dispatches.Add(1)
	f.opts.Obs.Counter(obs.Label(obs.MFleetDispatches, "backend", b.id)).Inc()

	sp := f.opts.Trace.StartUnder(tc, obs.CatRPC, "backend-prove")
	outcome := "transport"
	defer func() {
		sp.EndArgs(map[string]any{"backend": b.id, "hedge": hedge, "outcome": outcome})
	}()
	// The wire carries this attempt's span, so the daemon's tier spans
	// nest under the exact backend attempt that caused them.
	wtc := sp.Context()
	wtc.Flags |= obs.FlagShipSpans

	fail := func(err error) ([]byte, error, bool) {
		defer f.noteBreaker(b)
		if ctx.Err() != nil {
			outcome = "cancelled"
			b.breaker.Forgive()
			return nil, unavailable("prooffleet: %v", ctx.Err()), true
		}
		b.breaker.Failure(time.Now())
		b.health.Observe(true)
		return nil, err, true
	}

	if f.opts.Fault != nil {
		if ferr := f.opts.Fault.FleetDispatch(b.id, seq); ferr != nil {
			return fail(unavailable("prooffleet: %v", ferr))
		}
	}
	conn, derr := b.muxConn(f.opts.ConnectTimeout)
	if derr != nil {
		return fail(unavailable("prooffleet: %v", derr))
	}
	rctx, rcancel := context.WithTimeout(ctx, f.opts.RequestTimeout)
	defer rcancel()

	start := time.Now()
	rf, derr := conn.DoTraced(rctx, proofrpc.TProve, cond, wtc)
	if derr != nil {
		return fail(unavailable("prooffleet: backend %s: %v", b.id, derr))
	}
	body := rf.Payload
	if f.opts.Fault != nil {
		if d := f.opts.Fault.FleetDelay(b.id, seq); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				outcome = "cancelled"
				b.breaker.Forgive()
				f.noteBreaker(b)
				return nil, unavailable("prooffleet: %v", ctx.Err()), true
			}
		}
		body = f.opts.Fault.FleetProof(b.id, seq, body)
	}
	out, src, ierr, tr := proofrpc.InterpretReply(proofrpc.TProve, rf.Type, body)
	if tr {
		// Readable frame, garbage content: a byzantine backend. The
		// sanity decode inside InterpretReply caught it before the bytes
		// could reach the kernel boundary; treat it as a transport
		// failure so the key fails over.
		f.byzantine.Add(1)
		f.opts.Obs.Counter(obs.Label(obs.MFleetByzantine, "backend", b.id)).Inc()
		return fail(ierr)
	}
	if ierr != nil {
		// Authoritative remote outcome (counterexample, classified solver
		// error): the wire and the backend behaved.
		outcome = "error"
		b.breaker.Success()
		b.health.Observe(false)
		f.noteBreaker(b)
		return nil, ierr, false
	}
	elapsed := time.Since(start)
	outcome = "proof"
	b.breaker.Success()
	b.health.Observe(false)
	f.noteBreaker(b)
	f.lat.Observe(elapsed)
	f.opts.Obs.Counter(obs.Label(obs.MRemoteSource, "src", proofrpc.SrcString(src))).Inc()
	return out, nil, false
}

// Stitch pulls every backend's spans for this fleet's trace and merges
// them into the fleet tracer, one process track per backend (pids
// 1000, 1001, …) with clock offsets estimated per backend from a
// stamped ping. Call it once after a traced run, before writing the
// trace file. A no-op without a tracer; per-backend failures are
// skipped (a dead backend should not cost the rest of the stitch).
func (f *Fleet) Stitch(ctx context.Context) error {
	if f.opts.Trace == nil {
		return nil
	}
	hi, lo := f.opts.Trace.TraceID()
	var firstErr error
	for i, b := range f.backends {
		conn, err := b.muxConn(f.opts.ConnectTimeout)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		var offset time.Duration
		t0 := time.Now()
		if nano, rtt, perr := conn.PingTime(ctx); perr == nil && nano != 0 {
			offset = time.Duration(nano - t0.Add(rtt/2).UnixNano())
		}
		ex, err := conn.FetchSpans(ctx, hi, lo)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		f.opts.Trace.Merge(ex, int64(1000+i), "bcfd:"+b.id, offset)
	}
	return firstErr
}

// muxConn returns the backend's live multiplexed connection, redialing
// a poisoned or absent one.
func (b *backend) muxConn(connectTimeout time.Duration) (*proofrpc.MuxConn, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.conn != nil && b.conn.Err() == nil {
		return b.conn, nil
	}
	if b.conn != nil {
		b.conn.Close()
		b.conn = nil
	}
	c, err := proofrpc.DialMux(b.network, b.addr, connectTimeout)
	if err != nil {
		return nil, err
	}
	b.conn = c
	return c, nil
}

// probeLoop is the active health prober: every ProbeInterval each
// backend answers a THealth frame. Outcomes feed the breaker exactly
// like request outcomes do — which is also how an open breaker finds
// its way back: once the cooldown elapses, the probe takes the first
// probationary slot.
func (f *Fleet) probeLoop() {
	defer close(f.probeDone)
	ticker := time.NewTicker(f.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.probeStop:
			return
		case <-ticker.C:
		}
		for _, b := range f.backends {
			f.probe(b)
		}
	}
}

// probe runs one active health check against one backend.
func (f *Fleet) probe(b *backend) {
	defer f.exportBreakerState(b)
	if !b.breaker.Allow(time.Now()) {
		return // open and cooling (or trickle busy): stay off the wire
	}
	ctx, cancel := context.WithTimeout(context.Background(), f.opts.ConnectTimeout)
	defer cancel()
	conn, err := b.muxConn(f.opts.ConnectTimeout)
	if err == nil {
		var h proofrpc.Health
		h, err = conn.Health(ctx)
		if err == nil {
			b.draining.Store(h.Draining)
		}
	}
	if err != nil {
		b.breaker.Failure(time.Now())
		b.health.Observe(true)
		f.opts.Obs.Counter(obs.Labels(obs.MFleetProbes, "backend", b.id, "outcome", "fail")).Inc()
		return
	}
	b.breaker.Success()
	b.health.Observe(false)
	f.opts.Obs.Counter(obs.Labels(obs.MFleetProbes, "backend", b.id, "outcome", "ok")).Inc()
}

func (f *Fleet) exportBreakerState(b *backend) {
	f.noteBreaker(b)
	if f.opts.Obs == nil {
		return
	}
	g := f.opts.Obs.Gauge(obs.Label(obs.MFleetBreakerState, "backend", b.id))
	g.Set(int64(b.breaker.State()))
}

// BackendStats is one backend's health snapshot.
type BackendStats struct {
	Endpoint     string       `json:"endpoint"`
	State        BreakerState `json:"-"`
	StateName    string       `json:"state"`
	Dispatches   int64        `json:"dispatches"`
	ErrorRate    float64      `json:"error_rate"`
	BreakerOpens int          `json:"breaker_opens"`
	Draining     bool         `json:"draining,omitempty"`
}

// Stats is a fleet-wide snapshot (bcfbench's BENCH JSON embeds it).
type Stats struct {
	Backends     []BackendStats `json:"backends"`
	Dispatches   int64          `json:"dispatches"`
	Failovers    int64          `json:"failovers"`
	Hedges       int64          `json:"hedges"`
	HedgeWins    int64          `json:"hedge_wins"`
	Backpressure int64          `json:"backpressure"`
	Byzantine    int64          `json:"byzantine"`
	// Latency percentiles over the recent-success window, milliseconds.
	LatencyP50MS float64 `json:"latency_p50_ms"`
	LatencyP90MS float64 `json:"latency_p90_ms"`
	LatencyP99MS float64 `json:"latency_p99_ms"`
}

// Stats snapshots the fleet's resilience counters.
func (f *Fleet) Stats() Stats {
	s := Stats{
		Dispatches:   f.dispatches.Load(),
		Failovers:    f.failovers.Load(),
		Hedges:       f.hedges.Load(),
		HedgeWins:    f.hedgeWins.Load(),
		Backpressure: f.backpressure.Load(),
		Byzantine:    f.byzantine.Load(),
		LatencyP50MS: float64(f.lat.Percentile(50)) / 1e6,
		LatencyP90MS: float64(f.lat.Percentile(90)) / 1e6,
		LatencyP99MS: float64(f.lat.Percentile(99)) / 1e6,
	}
	for _, b := range f.backends {
		st := b.breaker.State()
		s.Backends = append(s.Backends, BackendStats{
			Endpoint:     b.id,
			State:        st,
			StateName:    st.String(),
			Dispatches:   b.dispatches.Load(),
			ErrorRate:    b.health.ErrorRate(),
			BreakerOpens: b.breaker.Opens(),
			Draining:     b.draining.Load(),
		})
	}
	return s
}
