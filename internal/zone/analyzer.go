package zone

import (
	"fmt"
	"math"

	"bcf/internal/ebpf"
)

// regKind classifies a register in the zone analyzer.
type regKind struct {
	tag    uint8
	mapIdx int32
}

const (
	kUninit uint8 = iota
	kScalar
	kStack
	kCtx
	kMapPtr
	kMapVal
	kMapValOrNull
	kConflict // join of incompatible kinds: unusable
)

// state is one program point's abstraction: a DBM over the value (for
// scalars) or total offset (for pointers) of r0..r9, plus kinds.
// Variable i+1 of the DBM corresponds to register i.
type state struct {
	dbm  *DBM
	kind [10]regKind
}

func v(r ebpf.Reg) int { return int(r) + 1 }

func newState() *state {
	s := &state{dbm: New(10)}
	s.kind[1] = regKind{tag: kCtx} // R1 = ctx at entry
	s.dbm.AssignConst(v(ebpf.R1), 0)
	return s
}

func (s *state) clone() *state {
	c := &state{dbm: s.dbm.Clone()}
	c.kind = s.kind
	return c
}

// join merges another state in place; incompatible kinds conflict.
func (s *state) join(o *state) {
	for i := range s.kind {
		if s.kind[i] != o.kind[i] {
			s.kind[i] = regKind{tag: kConflict}
			s.dbm.Forget(i + 1)
			o.dbm.Forget(i + 1) // symmetrize before the matrix join
		}
	}
	s.dbm.Join(o.dbm)
}

func (s *state) subsumes(o *state) bool {
	for i := range s.kind {
		if s.kind[i] != o.kind[i] && s.kind[i].tag != kConflict {
			return false
		}
	}
	return s.dbm.Subsumes(o.dbm)
}

// Analyzer runs a joining, widening dataflow analysis with the zone
// domain — the PREVAIL-style design, in contrast to the in-tree
// verifier's path enumeration.
type Analyzer struct {
	prog   *ebpf.Program
	states map[int]*state
	visits map[int]int
}

// Analyze checks prog with the zone analyzer; nil means accepted.
func Analyze(prog *ebpf.Program) error {
	if err := prog.Validate(); err != nil {
		return err
	}
	a := &Analyzer{prog: prog, states: map[int]*state{}, visits: map[int]int{}}
	return a.run()
}

type edge struct {
	pc int
	st *state
}

func (a *Analyzer) run() error {
	work := []edge{{pc: 0, st: newState()}}
	steps := 0
	for len(work) > 0 {
		steps++
		if steps > 200_000 {
			return fmt.Errorf("zone: analysis did not converge")
		}
		e := work[len(work)-1]
		work = work[:len(work)-1]

		cur := e.st
		if old, ok := a.states[e.pc]; ok {
			if old.subsumes(cur) {
				continue
			}
			a.visits[e.pc]++
			merged := old.clone()
			if a.visits[e.pc] > 3 {
				nxt := old.clone()
				nxt.join(cur.clone())
				merged.dbm.Widen(nxt.dbm)
				for i := range merged.kind {
					if merged.kind[i] != cur.kind[i] {
						merged.kind[i] = regKind{tag: kConflict}
						merged.dbm.Forget(i + 1)
					}
				}
			} else {
				merged.join(cur.clone())
			}
			merged.dbm.Close()
			a.states[e.pc] = merged
			cur = merged.clone()
		} else {
			cur.dbm.Close()
			a.states[e.pc] = cur.clone()
		}
		if cur.dbm.IsBottom() {
			continue
		}
		next, err := a.step(e.pc, cur)
		if err != nil {
			return err
		}
		work = append(work, next...)
	}
	return nil
}

// step interprets one instruction, returning successor edges.
func (a *Analyzer) step(pc int, s *state) ([]edge, error) {
	if pc < 0 || pc >= len(a.prog.Insns) {
		return nil, fmt.Errorf("zone: pc %d out of range", pc)
	}
	ins := a.prog.Insns[pc]
	fail := func(format string, args ...any) error {
		return fmt.Errorf("zone: insn %d: %s", pc, fmt.Sprintf(format, args...))
	}

	switch ins.Class() {
	case ebpf.ClassALU, ebpf.ClassALU64:
		if err := a.alu(s, ins, fail); err != nil {
			return nil, err
		}
		return []edge{{pc: pc + 1, st: s}}, nil

	case ebpf.ClassLD:
		if ins.Src == ebpf.PseudoMapFD {
			s.kind[ins.Dst] = regKind{tag: kMapPtr, mapIdx: int32(uint32(ins.Imm))}
			s.dbm.AssignConst(v(ins.Dst), 0)
		} else {
			s.kind[ins.Dst] = regKind{tag: kScalar}
			s.dbm.AssignConst(v(ins.Dst), ins.Imm)
		}
		s.dbm.Close()
		return []edge{{pc: pc + 2, st: s}}, nil

	case ebpf.ClassLDX:
		if err := a.checkAccess(s, ins.Src, ins.Off, ins.LoadSize(), fail); err != nil {
			return nil, err
		}
		size := ins.LoadSize()
		s.kind[ins.Dst] = regKind{tag: kScalar}
		if size < 8 {
			s.dbm.AssignInterval(v(ins.Dst), 0, int64(1)<<(8*size)-1, true, true)
		} else {
			s.dbm.Forget(v(ins.Dst))
		}
		s.dbm.Close()
		return []edge{{pc: pc + 1, st: s}}, nil

	case ebpf.ClassST, ebpf.ClassSTX:
		if err := a.checkAccess(s, ins.Dst, ins.Off, ins.LoadSize(), fail); err != nil {
			return nil, err
		}
		return []edge{{pc: pc + 1, st: s}}, nil

	case ebpf.ClassJMP, ebpf.ClassJMP32:
		return a.jump(pc, s, ins, fail)
	}
	return nil, fail("unsupported class")
}

func (a *Analyzer) alu(s *state, ins ebpf.Instruction, fail func(string, ...any) error) error {
	is32 := ins.Class() == ebpf.ClassALU
	op := ins.AluOp()
	dst := ins.Dst
	if dst == ebpf.R10 {
		return fail("write to frame pointer")
	}
	dk := &s.kind[dst]

	srcKind := regKind{tag: kScalar}
	srcVar := -1
	if ins.UsesSrcReg() && op != ebpf.AluNEG && op != ebpf.AluEND {
		if ins.Src == ebpf.R10 {
			srcKind = regKind{tag: kStack}
		} else {
			srcKind = s.kind[ins.Src]
			srcVar = v(ins.Src)
		}
	}

	forgetTo32 := func() {
		dk.tag = kScalar
		s.dbm.AssignInterval(v(dst), 0, math.MaxUint32, true, true)
		s.dbm.Close()
	}
	forget := func() {
		dk.tag = kScalar
		s.dbm.Forget(v(dst))
	}

	switch op {
	case ebpf.AluMOV:
		if is32 {
			// Zero-extension of the low word is outside the zone fragment.
			forgetTo32()
			return nil
		}
		if srcVar >= 0 || srcKind.tag == kStack {
			*dk = srcKind
			if srcKind.tag == kStack {
				s.dbm.AssignConst(v(dst), 0)
			} else {
				s.dbm.Assign(v(dst), srcVar, 0)
			}
		} else {
			dk.tag = kScalar
			s.dbm.AssignConst(v(dst), ins.Imm)
		}
		s.dbm.Close()
		return nil

	case ebpf.AluADD, ebpf.AluSUB:
		if is32 {
			if dk.tag != kScalar {
				return fail("32-bit pointer arithmetic")
			}
			forgetTo32()
			return nil
		}
		sign := int64(1)
		if op == ebpf.AluSUB {
			sign = -1
		}
		if srcVar < 0 && srcKind.tag == kScalar && !ins.UsesSrcReg() {
			// ± constant: zone-exact.
			s.dbm.AddConst(v(dst), sign*ins.Imm)
			return nil
		}
		if srcKind.tag != kScalar {
			if dk.tag == kScalar && op == ebpf.AluADD {
				// scalar += pointer
				lo, hi, loOK, hiOK := s.dbm.Bounds(v(dst))
				plo, phi, ploOK, phiOK := s.dbm.Bounds(srcVar)
				*dk = srcKind
				s.dbm.AssignInterval(v(dst), addSat(lo, plo), addSat(hi, phi), loOK && ploOK, hiOK && phiOK)
				s.dbm.Close()
				return nil
			}
			return fail("pointer on the right of arithmetic")
		}
		// ± register: interval-level fallback (the zone fragment cannot
		// express x := x + y).
		lo, hi, loOK, hiOK := s.dbm.Bounds(v(dst))
		slo, shi, sloOK, shiOK := s.dbm.Bounds(srcVar)
		if op == ebpf.AluADD {
			s.dbm.AssignInterval(v(dst), addSat(lo, slo), addSat(hi, shi), loOK && sloOK, hiOK && shiOK)
		} else {
			s.dbm.AssignInterval(v(dst), addSat(lo, -shi), addSat(hi, -slo), loOK && shiOK, hiOK && sloOK)
		}
		s.dbm.Close()
		return nil

	case ebpf.AluAND:
		if dk.tag != kScalar {
			return fail("bitwise op on pointer")
		}
		if !ins.UsesSrcReg() && ins.Imm >= 0 {
			dk.tag = kScalar
			s.dbm.AssignInterval(v(dst), 0, ins.Imm, true, true)
			s.dbm.Close()
			if is32 {
				return nil
			}
			return nil
		}
		if is32 {
			forgetTo32()
		} else {
			forget()
		}
		return nil

	default:
		if dk.tag != kScalar && op != ebpf.AluNEG && op != ebpf.AluEND {
			return fail("unsupported op on pointer")
		}
		if is32 {
			forgetTo32()
		} else {
			forget()
		}
		return nil
	}
}

func (a *Analyzer) jump(pc int, s *state, ins ebpf.Instruction, fail func(string, ...any) error) ([]edge, error) {
	op := ins.JmpOp()
	switch op {
	case ebpf.JmpEXIT:
		return nil, nil
	case ebpf.JmpJA:
		return []edge{{pc: pc + 1 + int(ins.Off), st: s}}, nil
	case ebpf.JmpCALL:
		return a.call(pc, s, ins, fail)
	}
	target := pc + 1 + int(ins.Off)
	dst := ins.Dst
	dk := s.kind[dst]

	// Null-check split.
	if dk.tag == kMapValOrNull && !ins.UsesSrcReg() && ins.Imm == 0 &&
		(op == ebpf.JmpJEQ || op == ebpf.JmpJNE) {
		null := s.clone()
		nonNull := s.clone()
		null.kind[dst] = regKind{tag: kScalar}
		null.dbm.AssignConst(v(dst), 0)
		null.dbm.Close()
		nonNull.kind[dst] = regKind{tag: kMapVal, mapIdx: dk.mapIdx}
		if op == ebpf.JmpJEQ {
			return []edge{{pc: target, st: null}, {pc: pc + 1, st: nonNull}}, nil
		}
		return []edge{{pc: target, st: nonNull}, {pc: pc + 1, st: null}}, nil
	}

	taken, fall := s.clone(), s
	if dk.tag == kScalar {
		a.guard(taken, ins, true)
		a.guard(fall, ins, false)
	}
	var out []edge
	if !taken.dbm.Close().IsBottom() {
		out = append(out, edge{pc: target, st: taken})
	}
	if !fall.dbm.Close().IsBottom() {
		out = append(out, edge{pc: pc + 1, st: fall})
	}
	return out, nil
}

// guard refines the state with a branch condition where the zone
// fragment can express it soundly. Unsigned comparisons are applied as
// signed only when both sides are known non-negative.
func (a *Analyzer) guard(s *state, ins ebpf.Instruction, taken bool) {
	op := ins.JmpOp()
	if ins.Class() == ebpf.ClassJMP32 {
		return // sub-register guards are outside the fragment
	}
	di := v(ins.Dst)
	var si int
	var imm int64
	if ins.UsesSrcReg() {
		if s.kind[ins.Src].tag != kScalar {
			return
		}
		si = v(ins.Src)
	} else {
		imm = ins.Imm
	}

	nonNeg := func(i int) bool {
		lo, _, loOK, _ := s.dbm.Bounds(i)
		return loOK && lo >= 0
	}
	signedOK := false
	switch op {
	case ebpf.JmpJSGT, ebpf.JmpJSGE, ebpf.JmpJSLT, ebpf.JmpJSLE, ebpf.JmpJEQ, ebpf.JmpJNE:
		signedOK = true
	case ebpf.JmpJGT, ebpf.JmpJGE, ebpf.JmpJLT, ebpf.JmpJLE:
		// Unsigned: sound as signed when both sides are non-negative.
		if ins.UsesSrcReg() {
			signedOK = nonNeg(di) && nonNeg(si)
		} else {
			signedOK = nonNeg(di) && imm >= 0
		}
	}
	if !signedOK {
		return
	}

	// Normalize to "dst REL src" where REL ∈ {≤, <, ≥, >, =}.
	type rel uint8
	const (
		le rel = iota
		lt
		ge
		gt
		eq
		none
	)
	r := none
	switch op {
	case ebpf.JmpJEQ:
		if taken {
			r = eq
		}
	case ebpf.JmpJNE:
		if !taken {
			r = eq
		}
	case ebpf.JmpJGT, ebpf.JmpJSGT:
		if taken {
			r = gt
		} else {
			r = le
		}
	case ebpf.JmpJGE, ebpf.JmpJSGE:
		if taken {
			r = ge
		} else {
			r = lt
		}
	case ebpf.JmpJLT, ebpf.JmpJSLT:
		if taken {
			r = lt
		} else {
			r = ge
		}
	case ebpf.JmpJLE, ebpf.JmpJSLE:
		if taken {
			r = le
		} else {
			r = gt
		}
	}
	if r == none {
		return
	}
	// v_d − v_s ≤ c constraints (v_s = 0-var when immediate).
	si2 := 0
	c := imm
	if ins.UsesSrcReg() {
		si2 = si
		c = 0
	}
	switch r {
	case le:
		s.dbm.Constrain(di, si2, c)
	case lt:
		s.dbm.Constrain(di, si2, c-1)
	case ge:
		s.dbm.Constrain(si2, di, -c)
	case gt:
		s.dbm.Constrain(si2, di, -c-1)
	case eq:
		s.dbm.Constrain(di, si2, c)
		s.dbm.Constrain(si2, di, -c)
	}
}

func (a *Analyzer) call(pc int, s *state, ins ebpf.Instruction, fail func(string, ...any) error) ([]edge, error) {
	spec, err := ebpf.LookupHelper(ebpf.HelperID(ins.Imm))
	if err != nil {
		return nil, fail("%v", err)
	}
	mapIdx := int32(-1)
	if s.kind[ebpf.R1].tag == kMapPtr {
		mapIdx = s.kind[ebpf.R1].mapIdx
	}
	// Size-checked memory arguments (probe_read-style).
	for i := 0; i < spec.NumArgs(); i++ {
		regno := ebpf.R1 + ebpf.Reg(i)
		switch spec.Args[i] {
		case ebpf.ArgConstSize, ebpf.ArgConstSizeOrZero:
			lo, hi, loOK, hiOK := s.dbm.Bounds(v(regno))
			if !loOK || !hiOK || lo < 0 {
				return nil, fail("helper size R%d unbounded in the zone fragment", regno)
			}
			if spec.Args[i] == ebpf.ArgConstSize && lo < 1 {
				return nil, fail("helper size R%d may be zero", regno)
			}
			mem := regno - 1
			if s.kind[mem].tag == kStack {
				mlo, mhi, mloOK, mhiOK := s.dbm.Bounds(v(mem))
				if !mloOK || !mhiOK {
					return nil, fail("helper memory R%d unbounded", mem)
				}
				if mlo < -ebpf.StackSize || addSat(mhi, hi) > 0 {
					return nil, fail("helper stack access out of bounds")
				}
			} else if s.kind[mem].tag == kMapVal {
				valSize := int64(a.prog.Maps[s.kind[mem].mapIdx].ValueSize)
				mlo, mhi, mloOK, mhiOK := s.dbm.Bounds(v(mem))
				if !mloOK || !mhiOK || mlo < 0 || addSat(mhi, hi) > valSize {
					return nil, fail("helper map access out of bounds")
				}
			} else {
				return nil, fail("helper memory R%d has unsupported kind", mem)
			}
		}
	}
	// Clobber caller-saved registers.
	for r := ebpf.R1; r <= ebpf.R5; r++ {
		s.kind[r] = regKind{tag: kUninit}
		s.dbm.Forget(v(r))
	}
	switch spec.Ret {
	case ebpf.RetPtrToMapValueOrNull:
		if mapIdx < 0 {
			return nil, fail("map helper without map argument")
		}
		s.kind[ebpf.R0] = regKind{tag: kMapValOrNull, mapIdx: mapIdx}
		s.dbm.AssignConst(v(ebpf.R0), 0)
	default:
		s.kind[ebpf.R0] = regKind{tag: kScalar}
		s.dbm.Forget(v(ebpf.R0))
	}
	s.dbm.Close()
	return []edge{{pc: pc + 1, st: s}}, nil
}

// checkAccess validates a memory access through reg at the given
// displacement using zone bounds.
func (a *Analyzer) checkAccess(s *state, reg ebpf.Reg, off int16, size int, fail func(string, ...any) error) error {
	if reg == ebpf.R10 {
		lo, hi := int64(off), int64(off)
		if lo < -ebpf.StackSize || hi+int64(size) > 0 {
			return fail("stack access out of bounds")
		}
		return nil
	}
	k := s.kind[reg]
	lo, hi, loOK, hiOK := s.dbm.Bounds(v(reg))
	switch k.tag {
	case kStack:
		if !loOK || !hiOK {
			return fail("unbounded stack pointer")
		}
		if lo+int64(off) < -ebpf.StackSize || hi+int64(off)+int64(size) > 0 {
			return fail("stack access out of bounds")
		}
		return nil
	case kMapVal:
		valSize := int64(a.prog.Maps[k.mapIdx].ValueSize)
		if !loOK || !hiOK {
			return fail("unbounded map value offset")
		}
		if lo+int64(off) < 0 || hi+int64(off)+int64(size) > valSize {
			return fail("map value access out of bounds (zone offset [%d,%d])", lo, hi)
		}
		return nil
	case kCtx:
		ctxSize := int64(a.prog.Type.CtxSize())
		if !loOK || !hiOK {
			return fail("unbounded ctx offset")
		}
		if lo+int64(off) < 0 || hi+int64(off)+int64(size) > ctxSize {
			return fail("ctx access out of bounds")
		}
		return nil
	case kMapValOrNull:
		return fail("possible null dereference")
	}
	return fail("memory access through %d-kind register", k.tag)
}
