package zone

import (
	"math/rand"
	"testing"

	"bcf/internal/ebpf"
)

// ---- DBM property tests ----

// randDBMWithWitness builds a random consistent DBM together with a
// satisfying valuation by starting from the point and relaxing.
func randDBMWithWitness(rng *rand.Rand, n int) (*DBM, []int64) {
	x := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		x[i] = int64(rng.Intn(2000) - 1000)
	}
	d := New(n)
	for k := 0; k < rng.Intn(12); k++ {
		i, j := rng.Intn(n+1), rng.Intn(n+1)
		if i == j {
			continue
		}
		slack := int64(rng.Intn(50))
		d.Constrain(i, j, x[i]-x[j]+slack)
	}
	d.Close()
	return d, x
}

func TestDBMCloseKeepsWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		d, x := randDBMWithWitness(rng, 4)
		if d.IsBottom() {
			t.Fatalf("consistent DBM closed to bottom")
		}
		if !d.Satisfies(x) {
			t.Fatalf("closure dropped the witness")
		}
	}
}

func TestDBMInconsistencyDetected(t *testing.T) {
	d := New(2)
	d.Constrain(1, 2, -5) // v1 - v2 <= -5
	d.Constrain(2, 1, 3)  // v2 - v1 <= 3  -> cycle sum -2 < 0
	if !d.Close().IsBottom() {
		t.Fatal("negative cycle not detected")
	}
}

func TestDBMBounds(t *testing.T) {
	d := New(2)
	d.Constrain(1, 0, 10) // v1 <= 10
	d.Constrain(0, 1, -3) // v1 >= 3
	d.Constrain(2, 1, 5)  // v2 <= v1 + 5
	d.Close()
	lo, hi, loOK, hiOK := d.Bounds(1)
	if !loOK || !hiOK || lo != 3 || hi != 10 {
		t.Fatalf("bounds(v1) = [%d,%d] (%v,%v)", lo, hi, loOK, hiOK)
	}
	_, hi2, _, hiOK2 := d.Bounds(2)
	if !hiOK2 || hi2 != 15 {
		t.Fatalf("closure should derive v2 <= 15, got %d (%v)", hi2, hiOK2)
	}
}

func TestDBMAssignTracksCopies(t *testing.T) {
	// The zone's selling point: copies stay related after refinement.
	d := New(2)
	d.Assign(2, 1, 0) // v2 := v1
	d.Constrain(1, 0, 12)
	d.Close()
	_, hi, _, hiOK := d.Bounds(2)
	if !hiOK || hi != 12 {
		t.Fatalf("copy did not inherit the bound: %d (%v)", hi, hiOK)
	}
}

func TestDBMAddConstShifts(t *testing.T) {
	d := New(1)
	d.Constrain(1, 0, 10)
	d.Constrain(0, 1, 0)
	d.Close()
	d.AddConst(1, 5)
	lo, hi, _, _ := d.Bounds(1)
	if lo != 5 || hi != 15 {
		t.Fatalf("after +5: [%d,%d]", lo, hi)
	}
	d.AddConst(1, -20)
	lo, hi, _, _ = d.Bounds(1)
	if lo != -15 || hi != -5 {
		t.Fatalf("after -20: [%d,%d]", lo, hi)
	}
}

func TestDBMJoinSound(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 2000; iter++ {
		a, xa := randDBMWithWitness(rng, 3)
		b, xb := randDBMWithWitness(rng, 3)
		j := a.Clone()
		j.Join(b)
		j.Close()
		if !j.Satisfies(xa) || !j.Satisfies(xb) {
			t.Fatal("join lost a member")
		}
		if !j.Subsumes(a) || !j.Subsumes(b) {
			t.Fatal("join does not subsume its inputs")
		}
	}
}

func TestDBMWidenTerminates(t *testing.T) {
	d := New(1)
	d.Constrain(1, 0, 0)
	d.Constrain(0, 1, 0)
	d.Close()
	for i := 0; i < 100; i++ {
		next := d.Clone()
		next.AddConst(1, 1)
		before := d.Clone()
		d.Widen(next)
		d.Close()
		if d.Subsumes(next) && before.Subsumes(d) && d.Subsumes(before) {
			// Stable.
			return
		}
	}
	// Widening must reach a fixpoint quickly (here: second step).
	_, _, _, hiOK := d.Bounds(1)
	if hiOK {
		t.Fatal("widening failed to drop the growing bound")
	}
}

func TestDBMForget(t *testing.T) {
	d := New(2)
	d.Constrain(1, 0, 5)
	d.Constrain(2, 1, 0)
	d.Close()
	d.Forget(1)
	_, _, _, hiOK := d.Bounds(1)
	if hiOK {
		t.Fatal("forget left a bound behind")
	}
}

// ---- analyzer behaviour on the corpus patterns ----

func prog(src string, maps ...*ebpf.MapSpec) *ebpf.Program {
	return &ebpf.Program{Name: "z", Type: ebpf.ProgTracepoint,
		Insns: ebpf.MustAssemble(src), Maps: maps}
}

var m16 = &ebpf.MapSpec{Name: "m", Type: ebpf.MapArray, KeySize: 4, ValueSize: 16, MaxEntries: 4}

const zoneLookup = `
	r1 = map[0]
	r2 = r10
	r2 += -4
	*(u32 *)(r10 -4) = 0
	call 1
	if r0 == 0 goto miss
`
const zoneMiss = `
miss:
	r0 = 0
	exit
`

func TestZoneAcceptsMaskedAccess(t *testing.T) {
	// Interval-style reasoning embedded in the zone (bounds vs the zero
	// variable) handles plain masked offsets.
	err := Analyze(prog(zoneLookup+`
		r1 = r0
		r2 = *(u64 *)(r1 +0)
		r2 &= 0xf
		r1 += r2
		r0 = *(u8 *)(r1 +0)
		exit
	`+zoneMiss, m16))
	if err != nil {
		t.Fatalf("zone should accept the masked access: %v", err)
	}
}

func TestZoneAcceptsCopyBoundPattern(t *testing.T) {
	// The zone's relational strength: a 64-bit copy keeps both registers
	// linked, so signed two-sided bounds established on one transfer to
	// the other through the difference constraints.
	err := Analyze(prog(zoneLookup+`
		r1 = r0
		r2 = *(u64 *)(r1 +0)
		r3 = r2
		if r2 s> 12 goto miss
		if r2 s< 0 goto miss
		r1 += r3
		r0 = *(u8 *)(r1 +0)
		exit
	`+zoneMiss, m16))
	if err != nil {
		t.Fatalf("zone should accept the copy-bound pattern: %v", err)
	}
}

func TestZoneRejectsFigure2SumRelation(t *testing.T) {
	// The paper's key pattern is a SUM relation (r2 + r3 = 15), which
	// difference-bound matrices cannot express: the zone analyzer rejects
	// exactly like the in-tree baseline, motivating BCF over
	// stronger-but-still-insufficient in-kernel domains (§8).
	err := Analyze(prog(zoneLookup+`
		r1 = r0
		r2 = *(u64 *)(r1 +0)
		r2 &= 0xf
		r1 += r2
		r3 = 0xf
		r3 -= r2
		r1 += r3
		r0 = *(u8 *)(r1 +0)
		exit
	`+zoneMiss, m16))
	if err == nil {
		t.Fatal("a difference-bound domain must not prove a sum relation")
	}
}

func TestZoneRejectsUnsafe(t *testing.T) {
	err := Analyze(prog(zoneLookup+`
		r1 = r0
		r2 = *(u64 *)(r1 +0)
		r2 &= 0x1f
		r1 += r2
		r0 = *(u8 *)(r1 +0)
		exit
	`+zoneMiss, m16))
	if err == nil {
		t.Fatal("unsafe access accepted")
	}
}

func TestZoneLoopConverges(t *testing.T) {
	// Joins + widening make the counting loop converge (unlike the
	// enumerating verifier) — but the in-loop bound then requires the
	// invariant, which the join loses here: rejection, not divergence.
	err := Analyze(prog(`
		r7 = r1
		r6 = 0
	loop:
		r6 += 1
		r2 = *(u32 *)(r7 +0)
		if r2 != 0 goto loop
		r0 = 0
		exit
	`))
	if err != nil {
		t.Fatalf("bounded widening analysis should accept: %v", err)
	}
}

func TestZoneNullCheckRequired(t *testing.T) {
	err := Analyze(prog(`
		r1 = map[0]
		r2 = r10
		r2 += -4
		*(u32 *)(r10 -4) = 0
		call 1
		r0 = *(u8 *)(r0 +0)
		exit
	`, m16))
	if err == nil {
		t.Fatal("null-unchecked dereference accepted")
	}
}

func TestZoneGuardsRefine(t *testing.T) {
	// Unsigned guard applied under known non-negativity.
	err := Analyze(prog(zoneLookup+`
		r1 = r0
		r2 = *(u8 *)(r1 +0)
		if r2 > 15 goto miss
		r1 += r2
		r0 = *(u8 *)(r1 +0)
		exit
	`+zoneMiss, m16))
	if err != nil {
		t.Fatalf("guard refinement failed: %v", err)
	}
}
