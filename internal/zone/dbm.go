// Package zone implements the Zone abstract domain (difference-bound
// matrices, Miné 2001) and a small zone-based analyzer for eBPF scalar
// dataflow. It is the repository's stand-in for PREVAIL, the
// zone-domain verifier the paper compares against (§6.2, §8): running it
// over the dataset demonstrates which of the rejection patterns a
// relational-but-difference-only domain can and cannot express — the
// relational splits of Figure 2 are sums, which zones cannot represent,
// supporting the paper's argument that stronger in-kernel domains do not
// close the precision gap.
package zone

import "math"

// Inf is the absent-constraint sentinel.
const Inf = math.MaxInt64

// DBM is a difference-bound matrix over n variables plus the implicit
// zero variable (index 0): entry (i, j) bounds v_i − v_j from above.
// A DBM with a negative cycle is inconsistent (bottom).
type DBM struct {
	n      int
	m      []int64
	bottom bool
}

// New returns the top element (no constraints) over n variables.
func New(n int) *DBM {
	d := &DBM{n: n, m: make([]int64, (n+1)*(n+1))}
	for i := range d.m {
		d.m[i] = Inf
	}
	for i := 0; i <= n; i++ {
		d.set(i, i, 0)
	}
	return d
}

func (d *DBM) idx(i, j int) int  { return i*(d.n+1) + j }
func (d *DBM) at(i, j int) int64 { return d.m[d.idx(i, j)] }
func (d *DBM) set(i, j int, v int64) {
	d.m[d.idx(i, j)] = v
}

// Clone deep-copies the matrix.
func (d *DBM) Clone() *DBM {
	c := &DBM{n: d.n, m: make([]int64, len(d.m)), bottom: d.bottom}
	copy(c.m, d.m)
	return c
}

// IsBottom reports inconsistency.
func (d *DBM) IsBottom() bool { return d.bottom }

// addSat adds bounds with saturation at Inf.
func addSat(a, b int64) int64 {
	if a == Inf || b == Inf {
		return Inf
	}
	s := a + b
	// Saturate on overflow (bounds only grow toward Inf).
	if (b > 0 && s < a) || (b < 0 && s > a) {
		if b > 0 {
			return Inf
		}
		return -Inf + 1
	}
	return s
}

// Constrain records v_i − v_j ≤ c and returns the DBM for chaining.
func (d *DBM) Constrain(i, j int, c int64) *DBM {
	if d.bottom {
		return d
	}
	if c < d.at(i, j) {
		d.set(i, j, c)
	}
	return d
}

// Close computes the shortest-path closure (Floyd–Warshall) and detects
// inconsistency. It must be called after Constrain batches.
func (d *DBM) Close() *DBM {
	if d.bottom {
		return d
	}
	n := d.n + 1
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			ik := d.at(i, k)
			if ik == Inf {
				continue
			}
			for j := 0; j < n; j++ {
				if v := addSat(ik, d.at(k, j)); v < d.at(i, j) {
					d.set(i, j, v)
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if d.at(i, i) < 0 {
			d.bottom = true
			return d
		}
	}
	return d
}

// Forget removes every constraint mentioning variable i.
func (d *DBM) Forget(i int) *DBM {
	if d.bottom {
		return d
	}
	for k := 0; k <= d.n; k++ {
		if k != i {
			d.set(i, k, Inf)
			d.set(k, i, Inf)
		}
	}
	return d
}

// Assign models v_dst := v_src + c (dst ≠ src), the zone-exact
// assignment form. The matrix must be closed beforehand.
func (d *DBM) Assign(dst, src int, c int64) *DBM {
	if d.bottom {
		return d
	}
	if dst == src {
		return d.AddConst(dst, c)
	}
	d.Forget(dst)
	d.set(dst, src, c)
	d.set(src, dst, -c)
	// Propagate through src's existing relations (cheap re-closure).
	for k := 0; k <= d.n; k++ {
		if k == dst || k == src {
			continue
		}
		if v := addSat(c, d.at(src, k)); v < d.at(dst, k) {
			d.set(dst, k, v)
		}
		if v := addSat(d.at(k, src), c); v < d.at(k, dst) {
			d.set(k, dst, v)
		}
	}
	return d
}

// AddConst models v_i := v_i + c exactly: every difference involving v_i
// shifts by c.
func (d *DBM) AddConst(i int, c int64) *DBM {
	if d.bottom {
		return d
	}
	for k := 0; k <= d.n; k++ {
		if k == i {
			continue
		}
		if v := d.at(i, k); v != Inf {
			d.set(i, k, addSat(v, c))
		}
		if v := d.at(k, i); v != Inf {
			d.set(k, i, addSat(v, -c))
		}
	}
	return d
}

// AssignConst models v_i := c.
func (d *DBM) AssignConst(i int, c int64) *DBM {
	if d.bottom {
		return d
	}
	d.Forget(i)
	d.set(i, 0, c)
	d.set(0, i, -c)
	// Relate to other constants through the zero variable on next Close.
	return d
}

// AssignInterval models v_i := fresh value in [lo, hi] (use Inf bounds
// for unbounded sides).
func (d *DBM) AssignInterval(i int, lo, hi int64, loOK, hiOK bool) *DBM {
	if d.bottom {
		return d
	}
	d.Forget(i)
	if hiOK {
		d.set(i, 0, hi)
	}
	if loOK {
		d.set(0, i, -lo)
	}
	return d
}

// Bounds returns the interval of v_i (relative to the zero variable).
// The matrix must be closed.
func (d *DBM) Bounds(i int) (lo, hi int64, loOK, hiOK bool) {
	hiV := d.at(i, 0)
	loV := d.at(0, i)
	if hiV != Inf {
		hi, hiOK = hiV, true
	}
	if loV != Inf {
		lo, loOK = -loV, true
	}
	return lo, hi, loOK, hiOK
}

// Join computes the least upper bound (pointwise maximum of bounds).
func (d *DBM) Join(o *DBM) *DBM {
	if d.bottom {
		copy(d.m, o.m)
		d.bottom = o.bottom
		return d
	}
	if o.bottom {
		return d
	}
	for i := range d.m {
		if o.m[i] > d.m[i] {
			d.m[i] = o.m[i]
		}
	}
	return d
}

// Widen keeps stable bounds and drops growing ones to Inf (standard zone
// widening, ensuring loop termination).
func (d *DBM) Widen(next *DBM) *DBM {
	if d.bottom {
		copy(d.m, next.m)
		d.bottom = next.bottom
		return d
	}
	if next.bottom {
		return d
	}
	for i := range d.m {
		if next.m[i] > d.m[i] {
			d.m[i] = Inf
		}
	}
	return d
}

// Subsumes reports whether every valuation admitted by o is admitted by
// d (both closed).
func (d *DBM) Subsumes(o *DBM) bool {
	if o.bottom {
		return true
	}
	if d.bottom {
		return false
	}
	for i := range d.m {
		if d.m[i] < o.m[i] {
			return false
		}
	}
	return true
}

// Satisfies reports whether a concrete valuation (x[0] must be 0)
// satisfies every constraint; used by the property tests.
func (d *DBM) Satisfies(x []int64) bool {
	if d.bottom {
		return false
	}
	for i := 0; i <= d.n; i++ {
		for j := 0; j <= d.n; j++ {
			if c := d.at(i, j); c != Inf {
				if x[i]-x[j] > c {
					return false
				}
			}
		}
	}
	return true
}
