// Bounded-buffer example: the paper's Listing 7 scenario (distilled from
// KubeArmor's save_str_to_buffer).
//
// An event-serialization routine checks that at least six bytes remain in
// its buffer, then reads a string into the remaining space with
// bpf_probe_read. The *relationship* between the check and the computed
// read size is lost by the baseline verifier's local interval updates, so
// the helper call is falsely rejected; BCF recovers the relation with an
// exact symbolic expression, proves the size bounded in user space, and
// the kernel adopts the refined range after a linear-time proof check.
//
// This is the class of false rejection that forces production projects
// into workarounds like doubling buffer sizes (paper Listing 3, Elastic).
//
// Run with: go run ./examples/boundedbuf
package main

import (
	"fmt"
	"log"

	"bcf"
)

const bufSize = 32

var program = fmt.Sprintf(`
	r1 = map[0]
	r2 = r10
	r2 += -4
	*(u32 *)(r10 -4) = 0
	call 1
	if r0 == 0 goto out

	r6 = *(u64 *)(r0 +0)       ; type_pos: untrusted cursor into the buffer
	r6 &= %d                   ; bounded by the buffer mask
	r7 = %d
	r7 -= r6                   ; free = BUF - type_pos
	if r7 < 6 goto out         ; need one type byte + 4 length bytes + 1

	r8 = r6
	r8 += 5                    ; str_pos = type_pos + 1 + sizeof(int)
	r2 = %d
	r2 -= r8                   ; read_size = BUF - str_pos  (always >= 1)

	r1 = r10
	r1 += -%d                  ; &buf[0] on the stack
	r3 = 0
	call 4                     ; bpf_probe_read(buf, read_size, src)

	r0 = 0
	exit
out:
	r0 = 0
	exit
`, bufSize-1, bufSize, bufSize, bufSize)

func main() {
	prog := &bcf.Program{
		Name:  "save_str_to_buffer",
		Type:  bcf.ProgTracepoint,
		Insns: bcf.MustAssemble(program),
		Maps: []*bcf.MapSpec{{
			Name: "events", Type: bcf.MapArray,
			KeySize: 4, ValueSize: 16, MaxEntries: 8,
		}},
	}

	base := bcf.Verify(prog)
	fmt.Printf("baseline: accepted=%v err=%v\n", base.Accepted, base.Err)
	if base.Accepted {
		log.Fatal("expected the baseline to reject (this is a known false positive)")
	}

	rep := bcf.Verify(prog, bcf.WithBCF())
	fmt.Printf("with BCF: accepted=%v refinements=%d\n", rep.Accepted, rep.Refinements)
	if !rep.Accepted {
		log.Fatalf("BCF should accept: %v", rep.Err)
	}
	fmt.Printf("condition bytes: %d, proof bytes: %d\n", rep.ConditionBytes, rep.ProofBytes)

	// Without BCF, the production workaround (paper Listing 3, Elastic)
	// is to bound the cursor to *half* the buffer, wasting the other
	// half: the tighter mask keeps every interval subtraction precise, so
	// the baseline accepts — at the cost of half the allocated memory.
	halved := fmt.Sprintf(`
		r1 = map[0]
		r2 = r10
		r2 += -4
		*(u32 *)(r10 -4) = 0
		call 1
		if r0 == 0 goto out
		r6 = *(u64 *)(r0 +0)
		r6 &= %d               ; EVENT_BUFFER_SIZE_HALF - 1
		r7 = %d
		r7 -= r6
		if r7 < 6 goto out
		r8 = r6
		r8 += 5
		r2 = %d
		r2 -= r8
		r1 = r10
		r1 += -%d
		r3 = 0
		call 4
		r0 = 0
		exit
	out:
		r0 = 0
		exit
	`, bufSize/2-1, bufSize, bufSize, bufSize)
	workaround := &bcf.Program{
		Name: "workaround", Type: bcf.ProgTracepoint,
		Insns: bcf.MustAssemble(halved), Maps: prog.Maps,
	}
	wrep := bcf.Verify(workaround)
	fmt.Printf("workaround (half-usable buffer, no BCF): accepted=%v — %d of %d bytes wasted\n",
		wrep.Accepted, bufSize/2, bufSize)
}
