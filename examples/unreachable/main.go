// Unreachable-path example: the paper's Listing 8 scenario (distilled
// from Cilium's WireGuard program).
//
// After `w1 = input s>> 31` the sub-register is 0 or -1; after
// `w1 &= -134` it is 0 or -134. The path that requires both "w1 s<= -1"
// and "w1 == -136" is therefore infeasible — yet the baseline verifier,
// whose signed-interval domain over-approximates the bitwise AND, walks
// that path and rejects the (unreachable) out-of-bounds access on it.
//
// BCF's refinement condition for the failing access carries the suffix's
// path constraints; user space proves the constraint set unsatisfiable,
// and the verifier prunes the path instead of rejecting the program.
//
// Run with: go run ./examples/unreachable
package main

import (
	"fmt"
	"log"

	"bcf"
)

const program = `
	r1 = map[0]
	r2 = r10
	r2 += -4
	*(u32 *)(r10 -4) = 0
	call 1
	if r0 == 0 goto out

	r6 = *(u32 *)(r0 +0)
	w1 = w6
	w1 s>>= 31                 ; 0 or -1
	w1 &= -134                 ; 0 or -134
	if w1 s> -1 goto safe      ; taken for 0
	if w1 != -136 goto safe    ; always taken (w1 is -134 here)...

	; ...so this access never executes, but the baseline walks it:
	r2 = 100
	r1 = r0
	r1 += r2
	r0 = *(u8 *)(r1 +0)        ; 100 bytes past a 16-byte value
	exit

safe:
	r0 = 0
	exit
out:
	r0 = 0
	exit
`

func main() {
	prog := &bcf.Program{
		Name:  "wireguard_path",
		Type:  bcf.ProgTracepoint,
		Insns: bcf.MustAssemble(program),
		Maps: []*bcf.MapSpec{{
			Name: "cfg", Type: bcf.MapArray,
			KeySize: 4, ValueSize: 16, MaxEntries: 2,
		}},
	}

	base := bcf.Verify(prog, bcf.WithDebug())
	fmt.Printf("baseline: accepted=%v\n  err: %v\n", base.Accepted, base.Err)
	if base.Accepted {
		log.Fatal("expected a baseline rejection along the unreachable path")
	}

	rep := bcf.Verify(prog, bcf.WithBCF(), bcf.WithDebug())
	fmt.Printf("with BCF: accepted=%v (path proven infeasible and pruned)\n", rep.Accepted)
	if !rep.Accepted {
		log.Fatalf("BCF should accept: %v", rep.Err)
	}
	for _, line := range rep.Log {
		if contains(line, "pruned") || contains(line, "refine") {
			fmt.Println("  verifier:", line)
		}
	}

	// Exhaustive concrete check over the sign boundary.
	for _, seed := range []int64{1, 2, 3, 4} {
		in := bcf.NewInterp(prog, seed)
		if _, fault := in.Run(make([]byte, prog.Type.CtxSize())); fault != nil {
			log.Fatalf("fault: %v", fault)
		}
	}
	fmt.Println("concrete runs: no faults (the branch is genuinely dead)")
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
