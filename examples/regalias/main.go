// Register-alias example: the paper's Listing 9 scenario (distilled from
// BCC's ksnoop).
//
// Two sub-registers receive the same source value through 32-bit moves;
// one of them is bounds-checked, the other indexes the buffer. The
// baseline verifier does not link 32-bit copies, so the bound never
// reaches the register that needs it and the access is falsely rejected.
// BCF's symbolic expressions make the two registers literally the same
// term, so the path constraint on one bounds the other.
//
// Run with: go run ./examples/regalias
package main

import (
	"fmt"
	"log"

	"bcf"
)

const program = `
	r1 = map[0]
	r2 = r10
	r2 += -4
	*(u32 *)(r10 -4) = 0
	call 1
	if r0 == 0 goto out

	r6 = *(u64 *)(r0 +0)   ; one source value...
	w1 = w6                ; ...copied into w1 (checked below)
	w5 = w6                ; ...and into w5 (used below)

	if w1 > 12 goto out    ; bound established on w1 only

	w5 = w5                ; zero-extend before pointer arithmetic
	r1 = r0
	r1 += r5               ; baseline: w5 still unbounded -> reject
	r0 = *(u8 *)(r1 +0)
	exit

out:
	r0 = 0
	exit
`

func main() {
	prog := &bcf.Program{
		Name:  "ksnoop_alias",
		Type:  bcf.ProgTracepoint,
		Insns: bcf.MustAssemble(program),
		Maps: []*bcf.MapSpec{{
			Name: "buf", Type: bcf.MapArray,
			KeySize: 4, ValueSize: 16, MaxEntries: 2,
		}},
	}

	base := bcf.Verify(prog)
	fmt.Printf("baseline: accepted=%v\n  err: %v\n", base.Accepted, base.Err)
	if base.Accepted {
		log.Fatal("expected the baseline to miss the register equivalence")
	}

	// A 64-bit mov version IS linked by the baseline (find_equal_scalars)
	// — show the contrast.
	linked := &bcf.Program{
		Name: "linked64", Type: bcf.ProgTracepoint,
		Insns: bcf.MustAssemble(`
			r1 = map[0]
			r2 = r10
			r2 += -4
			*(u32 *)(r10 -4) = 0
			call 1
			if r0 == 0 goto out
			r6 = *(u64 *)(r0 +0)
			r1 = r6
			r5 = r6
			if r1 > 12 goto out
			r1 = r0
			r1 += r5
			r0 = *(u8 *)(r1 +0)
			exit
		out:
			r0 = 0
			exit
		`),
		Maps: prog.Maps,
	}
	lrep := bcf.Verify(linked)
	fmt.Printf("64-bit-mov variant, baseline: accepted=%v (find_equal_scalars links full copies)\n",
		lrep.Accepted)

	rep := bcf.Verify(prog, bcf.WithBCF())
	fmt.Printf("32-bit-mov variant, with BCF: accepted=%v refinements=%d\n",
		rep.Accepted, rep.Refinements)
	if !rep.Accepted {
		log.Fatalf("BCF should accept: %v", rep.Err)
	}
	for i, d := range rep.RefinementDetails() {
		fmt.Printf("  refinement #%d: condition %d B, proof %d B\n", i, d.CondBytes, d.ProofBytes)
	}
}
