// Quickstart: the paper's running example (Figure 2) end to end.
//
// A sixteen-byte map value is accessed at offset r2 + r3 where
// r2 = input & 0xf and r3 = 0xf - r2: the offset is always exactly 15,
// but the baseline verifier's interval domain over-approximates it to
// [0, 30] and rejects the program. With BCF, the verifier instead emits a
// refinement condition, user space proves it, the kernel checks the proof
// in linear time, and the program loads.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bcf"
)

const program = `
	; r1 = lookup(map[0], key=0)
	r1 = map[0]
	r2 = r10
	r2 += -4
	*(u32 *)(r10 -4) = 0
	call 1                     ; bpf_map_lookup_elem
	if r0 == 0 goto miss

	; the Figure 2 body
	r1 = r0
	r2 = *(u64 *)(r1 +0)       ; untrusted input
	r2 &= 0xf                  ; r2 in [0, 15]
	r1 += r2                   ; first access offset
	r3 = 0xf
	r3 -= r2                   ; r3 = 15 - r2 (remaining bytes)
	r1 += r3                   ; total offset is exactly 15...
	r0 = *(u8 *)(r1 +0)        ; ...but the verifier computed [0, 30]
	exit

miss:
	r0 = 0
	exit
`

func main() {
	prog := &bcf.Program{
		Name:  "figure2",
		Type:  bcf.ProgTracepoint,
		Insns: bcf.MustAssemble(program),
		Maps: []*bcf.MapSpec{{
			Name: "values", Type: bcf.MapArray,
			KeySize: 4, ValueSize: 16, MaxEntries: 4,
		}},
	}

	fmt.Println("=== program ===")
	fmt.Print(bcf.Disassemble(prog))

	fmt.Println("\n=== baseline verifier (no BCF) ===")
	base := bcf.Verify(prog)
	fmt.Printf("accepted: %v\nerror: %v\n", base.Accepted, base.Err)

	fmt.Println("\n=== with proof-guided abstraction refinement ===")
	rep := bcf.Verify(prog, bcf.WithBCF())
	fmt.Printf("accepted: %v\n", rep.Accepted)
	if !rep.Accepted {
		log.Fatalf("unexpected rejection: %v", rep.Err)
	}
	fmt.Printf("refinements: %d (requests: %d)\n", rep.Refinements, rep.RefinementRequests)
	for i, d := range rep.RefinementDetails() {
		fmt.Printf("  refinement #%d: tracked %d insns, condition %d B, proof %d B, check %d µs\n",
			i, d.TrackLen, d.CondBytes, d.ProofBytes, d.CheckNanos/1000)
	}

	// Run the accepted program concretely as a sanity check.
	fmt.Println("\n=== concrete execution ===")
	for seed := int64(0); seed < 3; seed++ {
		in := bcf.NewInterp(prog, seed)
		ret, fault := in.Run(make([]byte, prog.Type.CtxSize()))
		if fault != nil {
			log.Fatalf("accepted program faulted: %v", fault)
		}
		fmt.Printf("  seed %d: returned %d, no faults\n", seed, ret)
	}
}
