// Loop-invariant example: the paper's §7 future-work extension.
//
// Data-dependent loops defeat both the baseline verifier and BCF: the
// analysis unrolls the loop, each iteration's state differs (the
// counter), pruning never fires, and the instruction budget is exhausted
// (the 4.5% rejection bucket of §6.2). The paper sketches the remedy:
// "embed precomputed fixpoints for the loop directly within the
// extension; the verifier could then validate these fixpoints in a
// single pass."
//
// This repository implements that extension. The program ships a declared
// fixpoint range for the loop-carried register; at the loop head the
// verifier (a) checks the incoming state lies within the declared range —
// rejecting the load otherwise, so the annotation is validated, never
// trusted — and (b) widens the register to the full declared range, after
// which the second arrival is subsumed by the first and pruning closes
// the loop in one pass.
//
// Run with: go run ./examples/loopinvariant
package main

import (
	"fmt"
	"log"

	"bcf"
)

const program = `
	r7 = r1                    ; context pointer
	r1 = map[0]
	r2 = r10
	r2 += -4
	*(u32 *)(r10 -4) = 0
	call 1
	if r0 == 0 goto out
	r6 = 0                     ; loop counter (grows without bound)
loop:
	r6 += 1                    ; <- loop head (insn 9): r6 changes every trip
	r5 = r6
	r5 &= 0xf                  ; bounded index derived from the counter
	r1 = r0
	r1 += r5
	r3 = *(u8 *)(r1 +0)        ; per-iteration map access
	r2 = *(u32 *)(r7 +0)       ; unknown continuation condition
	if r2 != 0 goto loop
out:
	r0 = 0
	exit
`

const loopHead = 9

func main() {
	prog := &bcf.Program{
		Name:  "event_loop",
		Type:  bcf.ProgTracepoint,
		Insns: bcf.MustAssemble(program),
		Maps: []*bcf.MapSpec{{
			Name: "ring", Type: bcf.MapArray,
			KeySize: 4, ValueSize: 16, MaxEntries: 4,
		}},
	}

	// Without the invariant, even BCF exhausts the instruction budget:
	// each iteration's counter value makes a fresh state.
	plain := bcf.Verify(prog, bcf.WithBCF(), bcf.WithInsnLimit(2000))
	fmt.Printf("BCF without invariant: accepted=%v\n  err: %v\n  insns processed: %d\n",
		plain.Accepted, plain.Err, plain.Stats.InsnProcessed)
	if plain.Accepted {
		log.Fatal("expected budget exhaustion")
	}

	// With the declared fixpoint "r6 is an arbitrary 64-bit counter",
	// the widened state subsumes every later arrival: one pass suffices.
	rep := bcf.Verify(prog,
		bcf.WithBCF(),
		bcf.WithInsnLimit(2000),
		bcf.WithLoopInvariant(loopHead, 6, 0, ^uint64(0)),
	)
	fmt.Printf("BCF with declared fixpoint: accepted=%v, insns processed: %d\n",
		rep.Accepted, rep.Stats.InsnProcessed)
	if !rep.Accepted {
		log.Fatalf("unexpected rejection: %v", rep.Err)
	}

	// A lying annotation is caught, not trusted.
	bad := bcf.Verify(prog,
		bcf.WithBCF(),
		bcf.WithInsnLimit(2000),
		bcf.WithLoopInvariant(loopHead, 6, 0, 3), // the counter escapes [0,3]
	)
	fmt.Printf("with a false fixpoint [0,3]: accepted=%v\n  err: %v\n", bad.Accepted, bad.Err)
	if bad.Accepted {
		log.Fatal("a false fixpoint must be rejected")
	}

	// Concrete sanity run.
	in := bcf.NewInterp(prog, 7)
	if _, fault := in.Run(make([]byte, prog.Type.CtxSize())); fault != nil {
		log.Fatalf("fault: %v", fault)
	}
	fmt.Println("concrete run: no faults")
}
