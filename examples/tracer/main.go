// Tracer: a realistic event-serialization program of the kind the
// paper's motivation describes (security monitors like KubeArmor and
// Tetragon serialize variable-length event records into per-CPU
// buffers). It combines everything BCF provides in one load:
//
//   - a variable-length field loop, made tractable with a declared loop
//     fixpoint (§7 extension),
//   - relational cursor arithmetic (write_pos + remaining = BUF), which
//     the baseline verifier cannot track and BCF proves per access,
//   - a computed probe_read size (the Listing 7 pattern),
//   - and a modulo-computed record slot (exact division tracking).
//
// The baseline rejects it; with BCF plus the loop fixpoint it loads, and
// repeated loads are served from the proof cache.
//
// Run with: go run ./examples/tracer
package main

import (
	"fmt"
	"log"

	"bcf"
)

const bufSize = 64

var program = fmt.Sprintf(`
	r9 = r1                    ; ctx
	r1 = map[0]
	r2 = r10
	r2 += -4
	*(u32 *)(r10 -4) = 0
	call 1                     ; lookup the event descriptor
	if r0 == 0 goto out
	r7 = r0                    ; descriptor pointer

	; slot = desc.id %% 8, a modulo-computed record index (8-byte records)
	r6 = *(u64 *)(r7 +0)
	r6 %%= 8
	r5 = r6
	r5 <<= 3                   ; slot * 8, still provably <= 56
	r1 = r7
	r1 += r5
	r8 = *(u8 *)(r1 +0)        ; record tag for this slot

	; field loop: serialize up to 8 variable-length fields
	r6 = 0                     ; field counter (declared fixpoint below)
loop:
	r6 += 1                    ; <- loop head

	; cursor = desc.cursor & (BUF-1); remaining = BUF - cursor
	r2 = *(u64 *)(r7 +8)
	r2 &= %d
	r3 = %d
	r3 -= r2                   ; remaining
	if r3 < 6 goto out         ; need header room (Listing 7 pattern)

	; read_size = BUF - (cursor + 5)
	r4 = r2
	r4 += 5
	r2 = %d
	r2 -= r4
	r1 = r10
	r1 += -%d                  ; &buf[0]
	r3 = 0
	call 4                     ; probe_read(buf, read_size, src)

	; continue while the (random) event stream yields more fields
	call 7                     ; get_prandom_u32
	if r0 == 0 goto loop
out:
	r0 = 0
	exit
`, bufSize-1, bufSize, bufSize, bufSize)

const loopHead = 17 // the "r6 += 1" instruction

func main() {
	prog := &bcf.Program{
		Name:  "tracer",
		Type:  bcf.ProgTracepoint,
		Insns: bcf.MustAssemble(program),
		Maps: []*bcf.MapSpec{{
			Name: "events", Type: bcf.MapArray,
			KeySize: 4, ValueSize: 64, MaxEntries: 16,
		}},
	}
	if prog.Insns[loopHead].String() != "r6 += 1" {
		log.Fatalf("loop head drifted: insn %d is %q", loopHead, prog.Insns[loopHead])
	}

	fmt.Println("=== baseline ===")
	base := bcf.Verify(prog, bcf.WithInsnLimit(5000))
	fmt.Printf("accepted: %v\n  err: %v\n", base.Accepted, base.Err)

	fmt.Println("\n=== BCF + declared loop fixpoint ===")
	cache := bcf.NewProofCache()
	opts := []bcf.Option{
		bcf.WithBCF(),
		bcf.WithInsnLimit(5000),
		bcf.WithLoopInvariant(loopHead, 6, 0, ^uint64(0)),
		bcf.WithProofCache(cache),
	}
	rep := bcf.Verify(prog, opts...)
	if !rep.Accepted {
		log.Fatalf("rejected: %v", rep.Err)
	}
	fmt.Printf("accepted with %d proof-checked refinements\n", rep.Refinements)
	fmt.Printf("wire traffic: %d condition bytes, %d proof bytes\n",
		rep.ConditionBytes, rep.ProofBytes)
	fmt.Printf("analysis: %d insns, kernel %dµs / user %dµs\n",
		rep.Stats.InsnProcessed, rep.KernelNanos/1000, rep.UserNanos/1000)

	// Reload: the deterministic analysis hits the proof cache.
	again := bcf.Verify(prog, opts...)
	fmt.Printf("\nreload: accepted=%v, cache hits=%d (user time %dµs)\n",
		again.Accepted, again.CacheHits, again.UserNanos/1000)

	// Concrete safety sweep.
	for seed := int64(0); seed < 10; seed++ {
		in := bcf.NewInterp(prog, seed)
		if _, fault := in.Run(make([]byte, prog.Type.CtxSize())); fault != nil {
			log.Fatalf("fault (seed %d): %v", seed, fault)
		}
	}
	fmt.Println("concrete sweep: 10 randomized runs, no faults")
}
