; Compiler-style XDP filter: bounds-checked ethernet parse, per-CPU-style
; counter bump via map lookup. Regenerate the object with:
;   bcfasm -elf -type xdp -name xdp_filter -o testdata/xdp_filter.o testdata/xdp_filter.s
	r2 = *(u32 *)(r1 +0)
	r3 = *(u32 *)(r1 +4)
	r4 = r2
	r4 += 14
	if r4 > r3 goto out
	r6 = *(u16 *)(r2 +12)
	*(u32 *)(r10 -4) = 0
	r2 = r10
	r2 += -4
	r1 = map[0]
	call 1
	if r0 == 0 goto out
	r5 = *(u64 *)(r0 +0)
	r5 += 1
	*(u64 *)(r0 +0) = r5
out:
	r0 = 2
	exit
