; The paper's Figure 2 running example (see examples/quickstart).
r1 = map[0]
r2 = r10
r2 += -4
*(u32 *)(r10 -4) = 0
call 1
if r0 == 0 goto miss
r1 = r0
r2 = *(u64 *)(r1 +0)
r2 &= 0xf
r1 += r2
r3 = 0xf
r3 -= r2
r1 += r3
r0 = *(u8 *)(r1 +0)
exit
miss:
r0 = 0
exit
