package bcf

// The benchmark suite regenerates every quantity the paper's evaluation
// reports, one benchmark per table/figure (see DESIGN.md's experiment
// index), plus ablations of the design choices DESIGN.md calls out.
//
//	go test -bench=. -benchmem
//
// Custom metrics reported via b.ReportMetric:
//	accepted/512        §6.2 acceptance (BenchmarkAcceptance*)
//	proofB/op           proof bytes per refinement
//	condB/op            condition bytes per refinement
//	pctUnder4K          Figure 8's headline share
//	trackInsns/op       Table 3 symbolic track length

import (
	"fmt"
	"testing"

	"bcf/internal/bcfenc"
	"bcf/internal/corpus"
	"bcf/internal/ebpf"
	"bcf/internal/eval"
	"bcf/internal/expr"
	"bcf/internal/loader"
	"bcf/internal/proof"
	"bcf/internal/solver"
	"bcf/internal/verifier"
	"bcf/internal/zone"
)

// corpusInsnLimit matches internal/corpus's evaluation budget.
const corpusInsnLimit = 4000

// fig2Program is the paper's running example.
func fig2Program() *Program {
	return &Program{
		Name: "figure2", Type: ProgTracepoint,
		Insns: MustAssemble(`
			r1 = map[0]
			r2 = r10
			r2 += -4
			*(u32 *)(r10 -4) = 0
			call 1
			if r0 == 0 goto miss
			r1 = r0
			r2 = *(u64 *)(r1 +0)
			r2 &= 0xf
			r1 += r2
			r3 = 0xf
			r3 -= r2
			r1 += r3
			r0 = *(u8 *)(r1 +0)
			exit
		miss:
			r0 = 0
			exit
		`),
		Maps: []*MapSpec{{Name: "m", Type: MapArray, KeySize: 4, ValueSize: 16, MaxEntries: 4}},
	}
}

// fig2Cond is the Figure 2 refinement condition, used by the proof
// micro-benchmarks.
func fig2Cond() *expr.Expr {
	sym := expr.Var(0, 64)
	m := expr.And(sym, expr.Const(0xf, 64))
	e := expr.Add(m, expr.Sub(expr.Const(0xf, 64), m))
	return expr.Ule(e, expr.Const(15, 64))
}

// ---- §6.2 acceptance (the headline experiment) ----

// BenchmarkAcceptanceBaseline runs all 512 programs through the baseline
// verifier (paper: 0 accepted).
func BenchmarkAcceptanceBaseline(b *testing.B) {
	entries := corpus.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accepted := 0
		for _, e := range entries {
			res := loader.Load(e.Prog, loader.Options{
				Verifier: verifier.Config{InsnLimit: corpusInsnLimit},
			})
			if res.Accepted {
				accepted++
			}
		}
		b.ReportMetric(float64(accepted), "accepted/512")
	}
}

// BenchmarkAcceptanceBCF runs all 512 programs with BCF enabled
// (paper: 403 accepted = 78.7%).
func BenchmarkAcceptanceBCF(b *testing.B) {
	entries := corpus.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accepted := 0
		for _, e := range entries {
			res := loader.Load(e.Prog, loader.Options{
				EnableBCF: true,
				Verifier:  verifier.Config{InsnLimit: corpusInsnLimit},
			})
			if res.Accepted {
				accepted++
			}
		}
		b.ReportMetric(float64(accepted), "accepted/512")
	}
}

// BenchmarkAcceptanceBCFParallel runs the full evaluation through the
// worker pool (parallelism = GOMAXPROCS, one shared proof cache); its
// ns/op against BenchmarkAcceptanceBCF is the pipeline's wall-clock
// speedup, and cacheHitPct is the cross-program proof-sharing dividend.
func BenchmarkAcceptanceBCFParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev := eval.RunOpts(eval.Options{InsnLimit: corpusInsnLimit})
		b.ReportMetric(float64(ev.Acceptance().BCFAccepted), "accepted/512")
		b.ReportMetric(ev.Cache.HitRate(), "cacheHitPct")
	}
}

// ---- Table 3: component metrics ----

// BenchmarkTable3ProofCheck measures kernel-side proof checking alone
// (paper: 31/49/1845 µs).
func BenchmarkTable3ProofCheck(b *testing.B) {
	cond := fig2Cond()
	out, err := solver.Prove(nil, cond, solver.Options{})
	if err != nil || !out.Proven {
		b.Fatalf("prove: %v", err)
	}
	raw, err := bcfenc.EncodeProof(out.Proof)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(raw)), "proofB/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf, err := bcfenc.DecodeProof(raw)
		if err != nil {
			b.Fatal(err)
		}
		if err := proof.Check(cond, pf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3ProofCheckBitblast measures checking of a resolution
// refutation (the large-proof regime).
func BenchmarkTable3ProofCheckBitblast(b *testing.B) {
	cond := fig2Cond()
	out, err := solver.Prove(nil, cond, solver.Options{DisableRewriteTier: true})
	if err != nil || !out.Proven {
		b.Fatalf("prove: %v", err)
	}
	raw, err := bcfenc.EncodeProof(out.Proof)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(len(raw)), "proofB/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf, err := bcfenc.DecodeProof(raw)
		if err != nil {
			b.Fatal(err)
		}
		if err := proof.Check(cond, pf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3ProofGeneration measures the user-space side (the
// expensive half of the workload separation).
func BenchmarkTable3ProofGeneration(b *testing.B) {
	cond := fig2Cond()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := solver.Prove(nil, cond, solver.Options{})
		if err != nil || !out.Proven {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3ConditionGeneration measures the kernel-side symbolic
// tracking + encoding via a full refinement round trip (minus solving).
func BenchmarkTable3ConditionGeneration(b *testing.B) {
	prog := fig2Program()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := Verify(prog, WithBCF())
		if !rep.Accepted {
			b.Fatal(rep.Err)
		}
		d := rep.RefinementDetails()
		b.ReportMetric(float64(d[0].CondBytes), "condB/op")
		b.ReportMetric(float64(d[0].TrackLen), "trackInsns/op")
	}
}

// ---- Figure 8: proof size distribution ----

// BenchmarkFigure8ProofSizes runs the refinement-heavy slice of the
// dataset and reports the share of proofs under one page
// (paper: 99.4%).
func BenchmarkFigure8ProofSizes(b *testing.B) {
	entries := corpus.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total, under := 0, 0
		var bytes int
		for _, e := range entries[:403] { // the accept-family slice
			res := loader.Load(e.Prog, loader.Options{
				EnableBCF: true,
				Verifier:  verifier.Config{InsnLimit: corpusInsnLimit},
			})
			if res.RefineStats == nil {
				continue
			}
			for _, q := range res.RefineStats.Requests {
				if q.ProofBytes == 0 {
					continue
				}
				total++
				bytes += q.ProofBytes
				if q.ProofBytes < 4096 {
					under++
				}
			}
		}
		if total > 0 {
			b.ReportMetric(100*float64(under)/float64(total), "pctUnder4K")
			b.ReportMetric(float64(bytes)/float64(total), "proofB/op")
		}
	}
}

// ---- §6.3 analysis duration ----

// BenchmarkDurationSplit loads one representative program per family and
// reports the kernel/user time split (paper: 79.3% / 20.7%).
func BenchmarkDurationSplit(b *testing.B) {
	entries := corpus.Generate()
	picks := []int{0, 100, 180, 260, 340} // one per accepted family
	var kernel, user int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range picks {
			res := loader.Load(entries[p].Prog, loader.Options{
				EnableBCF: true,
				Verifier:  verifier.Config{InsnLimit: corpusInsnLimit},
			})
			kernel += res.KernelTime.Nanoseconds()
			user += res.UserTime.Nanoseconds()
		}
	}
	if kernel+user > 0 {
		b.ReportMetric(100*float64(kernel)/float64(kernel+user), "pctKernel")
	}
}

// ---- Ablations (DESIGN.md "Design choices worth ablating") ----

// BenchmarkAblationRewriteTier proves the Figure 2 condition with the
// two-tier prover (small proofs)...
func BenchmarkAblationRewriteTier(b *testing.B) {
	benchProofBytes(b, solver.Options{})
}

// ...and BenchmarkAblationBitblastOnly without the rewrite tier: proof
// size and generation time inflate (cf. the paper's PCC comparison, §8).
func BenchmarkAblationBitblastOnly(b *testing.B) {
	benchProofBytes(b, solver.Options{DisableRewriteTier: true})
}

func benchProofBytes(b *testing.B, opts solver.Options) {
	// (x & 0xf) + (y & 0xf) <= 30: the adder's carry chain defeats pure
	// gate-level constant folding, so the bit-blast tier must do real
	// resolution work while the rewrite tier closes it with two lemmas.
	x, y := expr.Var(0, 16), expr.Var(1, 16)
	sum := expr.Add(expr.And(x, expr.Const(0xf, 16)), expr.And(y, expr.Const(0xf, 16)))
	cond := expr.Ule(sum, expr.Const(30, 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := solver.Prove(nil, cond, opts)
		if err != nil || !out.Proven {
			b.Fatal(err)
		}
		raw, err := bcfenc.EncodeProof(out.Proof)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(raw)), "proofB/op")
	}
}

// BenchmarkAblationBackwardAnalysis measures symbolic-tracking length
// with the §4 backward analysis on...
func BenchmarkAblationBackwardAnalysis(b *testing.B) {
	benchTrackLen(b, false)
}

// ...and BenchmarkAblationNoBackwardAnalysis with tracking forced to the
// path head: the tracked suffix grows.
func BenchmarkAblationNoBackwardAnalysis(b *testing.B) {
	benchTrackLen(b, true)
}

func benchTrackLen(b *testing.B, disable bool) {
	// A long unrelated preamble precedes the Figure 2 pattern; backward
	// analysis skips it, full-path tracking pays for it.
	preamble := ""
	for i := 0; i < 48; i++ {
		preamble += fmt.Sprintf("r6 = %d\nr6 += %d\n", i, i+1)
	}
	prog := &Program{
		Name: "prefixed", Type: ProgTracepoint,
		Insns: MustAssemble(preamble + `
			r1 = map[0]
			r2 = r10
			r2 += -4
			*(u32 *)(r10 -4) = 0
			call 1
			if r0 == 0 goto miss
			r1 = r0
			r2 = *(u64 *)(r1 +0)
			r2 &= 0xf
			r1 += r2
			r3 = 0xf
			r3 -= r2
			r1 += r3
			r0 = *(u8 *)(r1 +0)
			exit
		miss:
			r0 = 0
			exit
		`),
		Maps: []*MapSpec{{Name: "m", Type: MapArray, KeySize: 4, ValueSize: 16, MaxEntries: 4}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := loader.Load(prog, loader.Options{
			EnableBCF:       true,
			DisableBackward: disable,
		})
		if !res.Accepted {
			b.Fatal(res.Err)
		}
		b.ReportMetric(float64(res.RefineStats.Requests[0].TrackLen), "trackInsns/op")
	}
}

// BenchmarkAblationProofCache measures repeat-load latency with the §7
// condition/proof cache...
func BenchmarkAblationProofCache(b *testing.B) {
	prog := fig2Program()
	cache := NewProofCache()
	Verify(prog, WithBCF(), WithProofCache(cache)) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := Verify(prog, WithBCF(), WithProofCache(cache))
		if !rep.Accepted || rep.CacheHits == 0 {
			b.Fatal("cache miss on repeat load")
		}
	}
}

// ...and BenchmarkAblationNoProofCache without it (every load re-solves).
func BenchmarkAblationNoProofCache(b *testing.B) {
	prog := fig2Program()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := Verify(prog, WithBCF())
		if !rep.Accepted {
			b.Fatal(rep.Err)
		}
	}
}

// BenchmarkAblationPruning verifies a branch ladder with state pruning
// on, BenchmarkAblationNoPruning with it off.
func BenchmarkAblationPruning(b *testing.B)   { benchPruning(b, false) }
func BenchmarkAblationNoPruning(b *testing.B) { benchPruning(b, true) }

func benchPruning(b *testing.B, disable bool) {
	src := "r0 = 0\nr6 = r1\n"
	for i := 0; i < 14; i++ {
		src += "r2 = *(u32 *)(r6 +0)\nif r2 == 0 goto +1\nr0 += 0\n"
	}
	src += "exit\n"
	prog := &Program{Name: "ladder", Type: ProgTracepoint, Insns: MustAssemble(src)}
	opts := []Option{}
	if disable {
		opts = append(opts, WithoutPruning())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := Verify(prog, opts...)
		if !rep.Accepted {
			b.Fatal(rep.Err)
		}
		b.ReportMetric(float64(rep.Stats.InsnProcessed), "insns/op")
	}
}

// ---- substrate micro-benchmarks ----

// BenchmarkVerifierBaseline measures raw abstract-interpretation speed on
// an accepted program (the kernel-space fast path BCF must not perturb).
func BenchmarkVerifierBaseline(b *testing.B) {
	prog := &Program{
		Name: "masked", Type: ProgTracepoint,
		Insns: MustAssemble(`
			r1 = map[0]
			r2 = r10
			r2 += -4
			*(u32 *)(r10 -4) = 0
			call 1
			if r0 == 0 goto miss
			r1 = r0
			r2 = *(u64 *)(r1 +0)
			r2 &= 0xf
			r1 += r2
			r0 = *(u8 *)(r1 +0)
			exit
		miss:
			r0 = 0
			exit
		`),
		Maps: []*MapSpec{{Name: "m", Type: MapArray, KeySize: 4, ValueSize: 16, MaxEntries: 4}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := Verify(prog); !rep.Accepted {
			b.Fatal(rep.Err)
		}
	}
}

// BenchmarkVerifierParallel measures parallel path exploration on the
// worst-case stress program (2^11 mutually incomparable paths, pruning
// never fires, so exploration work is fixed regardless of schedule).
// Compare the p1/p2/p4/p8 ns/op to read off the frontier's wall-clock
// scaling; insns/op pins the work as schedule-independent. The CI gate
// on BENCH_parallel_verifier.json (job verifier-parallel) tracks the
// same quantity via cmd/bcfbench -verifier-bench.
func BenchmarkVerifierParallel(b *testing.B) {
	prog := corpus.ParallelStress(11, 64, 0)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := Verify(prog, WithInsnLimit(1_000_000), WithParallelPaths(p))
				if !rep.Accepted {
					b.Fatal(rep.Err)
				}
				b.ReportMetric(float64(rep.Stats.InsnProcessed), "insns/op")
			}
		})
	}
}

// BenchmarkInterpreter measures the concrete-execution oracle.
func BenchmarkInterpreter(b *testing.B) {
	prog := fig2Program()
	ctx := make([]byte, prog.Type.CtxSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := NewInterp(prog, int64(i))
		if _, fault := in.Run(ctx); fault != nil {
			b.Fatal(fault)
		}
	}
}

// BenchmarkConditionEncode measures the BCF wire format.
func BenchmarkConditionEncode(b *testing.B) {
	cond := fig2Cond()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bcfenc.EncodeCondition(&bcfenc.Condition{Cond: cond}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConditionDecode measures kernel-side decoding of untrusted
// bytes.
func BenchmarkConditionDecode(b *testing.B) {
	raw, err := bcfenc.EncodeCondition(&bcfenc.Condition{Cond: fig2Cond()})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bcfenc.DecodeCondition(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvalHarness exercises the full table generator once (kept
// small: Table 2 only, which needs no verification run).
func BenchmarkEvalHarness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := eval.Table2String(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkCorpusGenerate measures dataset generation.
func BenchmarkCorpusGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(corpus.Generate()) != corpus.Size {
			b.Fatal("bad corpus")
		}
	}
}

// sanity: the bench file's helpers stay in sync with the corpus layout.
func TestBenchFamilySlices(t *testing.T) {
	entries := corpus.Generate()
	for _, p := range []int{0, 100, 180, 260, 340} {
		if entries[p].Expect != corpus.ExpectAccept {
			t.Fatalf("pick %d (%s) is not an accept-family program", p, entries[p].Family)
		}
	}
	if entries[259].Expect != corpus.ExpectAccept {
		t.Fatalf("entries[:260] must be accept families: %s", fmt.Sprint(entries[259].Family))
	}
}

// verify the ebpf alias surface compiles against internal types.
var _ = ebpf.StackSize

// BenchmarkZoneComparator runs the PREVAIL-analog zone analyzer over the
// dataset (§6.2 comparison; expected acceptance ≈0.8%).
func BenchmarkZoneComparator(b *testing.B) {
	entries := corpus.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		accepted := 0
		for _, e := range entries {
			if zone.Analyze(e.Prog) == nil {
				accepted++
			}
		}
		b.ReportMetric(float64(accepted), "accepted/512")
	}
}

// BenchmarkExtensionLoopInvariant measures the §7 loop-fixpoint
// extension: the annotated load analyzes the loop in a single pass.
func BenchmarkExtensionLoopInvariant(b *testing.B) {
	prog := &Program{
		Name: "loop", Type: ProgTracepoint,
		Insns: MustAssemble(`
			r7 = r1
			r6 = 0
		loop:
			r6 += 1
			r2 = *(u32 *)(r7 +0)
			if r2 != 0 goto loop
			r0 = 0
			exit
		`),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := Verify(prog, WithInsnLimit(100_000), WithLoopInvariant(2, 6, 0, ^uint64(0)))
		if !rep.Accepted {
			b.Fatal(rep.Err)
		}
		b.ReportMetric(float64(rep.Stats.InsnProcessed), "insns/op")
	}
}
