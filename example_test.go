package bcf_test

import (
	"fmt"

	"bcf"
)

// ExampleVerify loads the paper's Figure 2 program: rejected by the
// baseline abstraction, accepted after one proof-checked refinement.
func ExampleVerify() {
	prog := &bcf.Program{
		Name: "figure2",
		Type: bcf.ProgTracepoint,
		Insns: bcf.MustAssemble(`
			r1 = map[0]
			r2 = r10
			r2 += -4
			*(u32 *)(r10 -4) = 0
			call 1                 ; bpf_map_lookup_elem
			if r0 == 0 goto miss
			r1 = r0
			r2 = *(u64 *)(r1 +0)   ; untrusted input
			r2 &= 0xf              ; r2 in [0, 15]
			r1 += r2
			r3 = 0xf
			r3 -= r2               ; r3 = 15 - r2
			r1 += r3               ; offset is exactly 15; verifier sees [0, 30]
			r0 = *(u8 *)(r1 +0)
			exit
		miss:
			r0 = 0
			exit
		`),
		Maps: []*bcf.MapSpec{{
			Name: "values", Type: bcf.MapArray,
			KeySize: 4, ValueSize: 16, MaxEntries: 4,
		}},
	}

	baseline := bcf.Verify(prog)
	withBCF := bcf.Verify(prog, bcf.WithBCF())
	fmt.Println("baseline accepted:", baseline.Accepted)
	fmt.Println("with BCF accepted:", withBCF.Accepted)
	fmt.Println("refinements:", withBCF.Refinements)
	// Output:
	// baseline accepted: false
	// with BCF accepted: true
	// refinements: 1
}
