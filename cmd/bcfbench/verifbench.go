package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"bcf/internal/corpus"
	"bcf/internal/ebpf"
	"bcf/internal/verifier"
)

// verifierBenchReport is the BENCH_parallel_verifier.json schema: the
// wall-clock speedup of parallel path exploration over the sequential
// DFS on a branch-heavy worst-case program, plus a determinism verdict.
// The CI gate (job verifier-parallel) regenerates it on every push and
// fails on determinism breaks or speedup regressions against the
// committed artifact.
type verifierBenchReport struct {
	Schema     string `json:"schema"`
	Provenance string `json:"provenance"`
	GoVersion  string `json:"go_version"`
	Cores      int    `json:"cores"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	ParallelPaths int `json:"parallel_paths"`
	Depth         int `json:"depth"`
	Paths         int `json:"paths"`
	ProgramInsns  int `json:"program_insns"`
	InsnProcessed int `json:"insns_processed"`
	Reps          int `json:"reps"`

	WallMSP1 float64 `json:"wall_ms_p1"`
	WallMSPN float64 `json:"wall_ms_pn"`
	Speedup  float64 `json:"speedup"`

	// Deterministic is true iff the accept verdict, and the full error
	// identity of a faulty variant, were identical between ParallelPaths
	// 1 and N across every repetition.
	Deterministic bool `json:"deterministic"`
}

// timeVerify runs one verification and returns (duration, err, stats).
func timeVerify(p *ebpf.Program, workers int) (time.Duration, error, verifier.Stats) {
	v := verifier.New(p, verifier.Config{ParallelPaths: workers})
	t0 := time.Now()
	err := v.Verify()
	return time.Since(t0), err, v.Stats()
}

// sameVerifierError reports whether two verification outcomes are
// byte-identical: both nil, or structured errors with equal identity.
func sameVerifierError(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	ae, aok := a.(*verifier.Error)
	be, bok := b.(*verifier.Error)
	if !aok || !bok {
		return a.Error() == b.Error()
	}
	return ae.InsnIdx == be.InsnIdx && ae.Kind == be.Kind && ae.Msg == be.Msg
}

// runVerifierBench measures the parallel-verifier speedup on the
// ParallelStress worst case (2^depth mutually incomparable paths, so
// pruning never helps and exploration work is fixed), checks result
// determinism on both an accepting and a rejecting variant, and writes
// the report to path.
func runVerifierBench(path string, workers, depth, reps int, quiet bool) error {
	const tail = 96
	if reps < 1 {
		reps = 1
	}
	accept := corpus.ParallelStress(depth, tail, 0)
	reject := corpus.ParallelStress(depth, tail, 2)

	deterministic := true
	best := func(p *ebpf.Program, w int, want error) (time.Duration, verifier.Stats) {
		minD := time.Duration(0)
		var minSt verifier.Stats
		for r := 0; r < reps; r++ {
			d, err, st := timeVerify(p, w)
			if !sameVerifierError(want, err) {
				deterministic = false
				if !quiet {
					fmt.Fprintf(os.Stderr, "verifier bench: DETERMINISM BREAK at workers=%d: want %v, got %v\n", w, want, err)
				}
			}
			if r == 0 || d < minD {
				minD, minSt = d, st
			}
		}
		return minD, minSt
	}

	if !quiet {
		fmt.Fprintf(os.Stderr, "verifier bench: depth=%d (%d paths), tail=%d, workers=%d, reps=%d\n",
			depth, 1<<depth, tail, workers, reps)
	}
	d1, st1 := best(accept, 1, nil)
	dn, _ := best(accept, workers, nil)

	// Error-identity determinism on the rejecting variant, all reps.
	_, rejErr, _ := timeVerify(reject, 1)
	if rejErr == nil {
		deterministic = false
	}
	best(reject, workers, rejErr)

	rep := verifierBenchReport{
		Schema:        "bcf_parallel_verifier_bench/v1",
		Provenance:    "measured",
		GoVersion:     runtime.Version(),
		Cores:         runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		ParallelPaths: workers,
		Depth:         depth,
		Paths:         1 << depth,
		ProgramInsns:  len(accept.Insns),
		InsnProcessed: st1.InsnProcessed,
		Reps:          reps,
		WallMSP1:      float64(d1.Microseconds()) / 1000,
		WallMSPN:      float64(dn.Microseconds()) / 1000,
		Speedup:       float64(d1) / float64(dn),
		Deterministic: deterministic,
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "verifier bench: p1 %.1fms, p%d %.1fms → %.2fx speedup on %d cores (deterministic=%v)\n",
			rep.WallMSP1, workers, rep.WallMSPN, rep.Speedup, rep.Cores, deterministic)
	}
	return nil
}
