// Command bcfbench regenerates the paper's evaluation (§6): it runs the
// 512-program dataset through the baseline verifier and through BCF, then
// prints every table and figure with the paper's reference values
// alongside the measured ones.
//
// The corpus programs are independent loads, so the run fans out across a
// worker pool sharing one proof cache (default parallelism: GOMAXPROCS).
// Aggregates are deterministic regardless of parallelism.
//
// Usage:
//
//	bcfbench                 # everything, parallel across all cores
//	bcfbench -parallel 1     # sequential run
//	bcfbench -table accept   # just the acceptance headline
//	bcfbench -table 1|2|3    # a specific table
//	bcfbench -fig 8          # the proof-size distribution
//	bcfbench -table duration # the §6.3 time split + wall-clock speedup
//	bcfbench -table cache    # shared proof-cache hit/miss statistics
//	bcfbench -n 96 -json out.json  # reduced-corpus smoke run, machine-readable
//	bcfbench -elf-dir dataset/ -json out.json  # evaluate a directory of ELF objects
//
// Remote proving (single daemon or a fleet):
//
//	bcfbench -remote unix:/run/bcfd.sock           # one daemon via proofrpc
//	bcfbench -remote unix:/a.sock,unix:/b.sock,unix:/c.sock   # prooffleet
//	bcfbench -remote ...,... -hedge 5ms            # fixed hedging delay
//	bcfbench -remote ...,... -hedge -1ns           # hedging off
//
// Observability (the telemetry layer of internal/obs):
//
//	bcfbench -metrics                 # per-stage latency/traffic table + metrics block in -json
//	bcfbench -tracefile t.json        # Chrome trace-event timeline (open in ui.perfetto.dev)
//	bcfbench -cpuprofile cpu.pprof    # CPU profile of the run (go tool pprof)
//	bcfbench -memprofile mem.pprof    # heap profile after the run
//	bcfbench -listen :6060            # serve /metrics (Prometheus) + /debug/pprof while running
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	rpprof "runtime/pprof"
	"strings"
	"syscall"
	"time"

	"bcf/internal/corpus"
	"bcf/internal/elf"
	"bcf/internal/eval"
	"bcf/internal/loader"
	"bcf/internal/obs"
	"bcf/internal/prooffleet"
	"bcf/internal/proofrpc"
)

// benchReport is the machine-readable output of -json: the acceptance
// headline plus the timing and cache numbers that form the per-commit
// performance trajectory (BENCH_*.json).
type benchReport struct {
	// Run metadata: enough to interpret a BENCH_*.json without the
	// invocation that produced it.
	GoVersion   string `json:"go_version"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Remote      bool   `json:"remote"`
	RemoteAddr  string `json:"remote_addr,omitempty"`
	Corpus      int    `json:"corpus"`
	InsnLimit   int    `json:"insn_limit"`
	Parallelism int    `json:"parallelism"`
	WallMS      int64  `json:"wall_ms"`
	// ProgramMS sums per-program analysis time: the sequential-equivalent
	// wall clock. Speedup = program_ms / wall_ms.
	ProgramMS        int64   `json:"program_ms"`
	Speedup          float64 `json:"speedup"`
	BaselineAccepted int     `json:"baseline_accepted"`
	BCFAccepted      int     `json:"bcf_accepted"`
	WeakCondition    int     `json:"weak_condition"`
	InsnLimitReject  int     `json:"insn_limit_rejects"`
	Untriggered      int     `json:"untriggered"`
	CacheHits        int     `json:"cache_hits"`
	CacheMisses      int     `json:"cache_misses"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	CacheEvictions   int     `json:"cache_evictions"`
	CacheSize        int     `json:"cache_size"`
	// Remote-proving outcome split (zero without -remote).
	RemoteProofs       int `json:"remote_proofs,omitempty"`
	RemoteFallbacks    int `json:"remote_fallbacks,omitempty"`
	RemoteBackpressure int `json:"remote_backpressure,omitempty"`
	// Fleet routing/resilience counters and latency percentiles when
	// -remote named more than one endpoint. HedgeDelayMS records the
	// -hedge flag (-1 = hedging disabled, 0 = percentile-derived).
	HedgeDelayMS float64           `json:"hedge_delay_ms,omitempty"`
	Fleet        *prooffleet.Stats `json:"fleet,omitempty"`
	// Cold/warm comparison of -coldwarm: the same corpus run twice.
	// Locally the runs share one proof cache; remotely each run gets a
	// fresh local cache so warm hits exercise the daemon's stores.
	ColdWallMS  int64   `json:"cold_wall_ms,omitempty"`
	WarmWallMS  int64   `json:"warm_wall_ms,omitempty"`
	WarmSpeedup float64 `json:"warm_speedup,omitempty"`
	// Metrics is the telemetry snapshot (per-stage latency histograms,
	// pipeline counters) when the run had telemetry enabled (-metrics,
	// -tracefile or -listen).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

func main() {
	table := flag.String("table", "", "which table: accept|1|2|3|duration|zone|classes|cache (default all)")
	fig := flag.String("fig", "", "which figure: 8")
	limit := flag.Int("insn-limit", corpusInsnLimit(), "analyzed-instruction budget")
	src := flag.String("src", ".", "repository root (for Table 1 line counts)")
	quiet := flag.Bool("q", false, "suppress progress output")
	parallel := flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	parallelPaths := flag.Int("parallel-paths", 0, "verifier path-exploration workers per load (<=1 = sequential DFS)")
	verifBench := flag.String("verifier-bench", "", "run the parallel-verifier speedup benchmark, write BENCH JSON to this path, and exit")
	verifBenchDepth := flag.Int("verifier-bench-depth", 11, "fork depth of the verifier benchmark program (2^depth paths)")
	verifBenchReps := flag.Int("verifier-bench-reps", 5, "timing repetitions per worker count in -verifier-bench")
	jsonPath := flag.String("json", "", "write a machine-readable timing/acceptance report to this path")
	n := flag.Int("n", 0, "evaluate only the first N corpus programs (0 = all 512)")
	metrics := flag.Bool("metrics", false, "collect telemetry and print the per-stage metrics table")
	traceFile := flag.String("tracefile", "", "write a Chrome trace-event JSON timeline to this path (Perfetto-loadable)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile after the run to this path")
	listen := flag.String("listen", "", "serve /metrics (Prometheus text) and /debug/pprof on this address while running")
	remote := flag.String("remote", "", "prove via bcfd daemon(s): unix:/path or host:port, comma-separated for a fleet")
	hedge := flag.Duration("hedge", 0, "fleet hedging delay (0 = derive from latency percentiles, negative = off)")
	coldwarm := flag.Bool("coldwarm", false, "run the corpus twice and report cold vs warm-cache timing")
	elfDir := flag.String("elf-dir", "", "evaluate a directory of ELF objects (.o) instead of the synthetic corpus")
	flag.Parse()

	if *verifBench != "" {
		workers := *parallelPaths
		if workers <= 1 {
			workers = runtime.GOMAXPROCS(0)
		}
		if err := runVerifierBench(*verifBench, workers, *verifBenchDepth, *verifBenchReps, *quiet); err != nil {
			fatal(err)
		}
		return
	}

	wantAll := *table == "" && *fig == ""
	needRun := wantAll || *table == "accept" || *table == "3" || *table == "duration" ||
		*table == "classes" || *table == "cache" || *fig == "8" || *jsonPath != "" ||
		*metrics || *traceFile != "" || *coldwarm || *elfDir != ""

	// Telemetry is opt-in: with none of the observability flags set, the
	// registry and tracer stay nil and every instrumented path pays only
	// a nil check (the <2% throughput bound of the design). Enabling any
	// of them also arms the flight recorder, dumped on SIGQUIT and served
	// at /debug/journal.
	var reg *obs.Registry
	var tracer *obs.Tracer
	if *metrics || *traceFile != "" || *listen != "" {
		reg = obs.NewRegistry()
		reg.SetJournal(obs.NewJournal(0))
		quitSig := make(chan os.Signal, 1)
		signal.Notify(quitSig, syscall.SIGQUIT)
		go func() {
			for range quitSig {
				fmt.Fprintln(os.Stderr, "bcfbench: SIGQUIT: flight recorder")
				reg.Journal().Dump(os.Stderr)
			}
		}()
	}
	if *traceFile != "" {
		tracer = obs.NewTracer().WithProcess(os.Getpid(), "bcfbench")
	}

	// A single -remote endpoint keeps the plain proofrpc client; a
	// comma-separated list builds a prooffleet with rendezvous routing,
	// breakers and hedging. Both propagate the tracer's context on the
	// wire so the daemons record their spans under this run's trace ID.
	var remoteProver loader.RemoteProver
	var fleet *prooffleet.Fleet
	var client *proofrpc.Client
	if *remote != "" {
		if endpoints := splitEndpoints(*remote); len(endpoints) > 1 {
			f, err := prooffleet.New(prooffleet.Options{
				Endpoints:  endpoints,
				HedgeDelay: *hedge,
				Obs:        reg,
				Trace:      tracer,
			})
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			fleet = f
			remoteProver = f
		} else {
			c, err := proofrpc.Dial(*remote, proofrpc.ClientOptions{Obs: reg, Trace: tracer})
			if err != nil {
				fatal(err)
			}
			defer c.Close()
			client = c
			remoteProver = c
		}
	}

	if *listen != "" {
		var fleetStats func() any
		if fleet != nil {
			fleetStats = func() any { return fleet.Stats() }
		}
		mux := obs.DebugMux(reg, fleetStats)
		go func() {
			if err := http.ListenAndServe(*listen, mux); err != nil {
				fmt.Fprintln(os.Stderr, "bcfbench: listen:", err)
			}
		}()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "serving /metrics, /debug/journal and /debug/pprof on %s\n", *listen)
		}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := rpprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			rpprof.StopCPUProfile()
			f.Close()
		}()
	}

	var ev *eval.Evaluation
	var coldWall, warmWall int64
	if needRun {
		progress := func(done, total int) {
			if !*quiet && done%64 == 0 {
				fmt.Fprintf(os.Stderr, "  ... %d/%d programs\n", done, total)
			}
		}
		if *quiet {
			progress = nil
		}
		var entries []corpus.Entry
		size := corpus.Size
		if *elfDir != "" {
			var err error
			entries, err = loadELFDir(*elfDir)
			if err != nil {
				fatal(err)
			}
			size = len(entries)
		}
		if *n > 0 && *n < size {
			size = *n
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running the %d-program evaluation (insn limit %d, parallelism %d)...\n",
				size, *limit, effectiveParallelism(*parallel, size))
		}
		runOnce := func(cache *loader.ProofCache) *eval.Evaluation {
			return eval.RunOpts(eval.Options{
				Entries:       entries,
				InsnLimit:     *limit,
				Parallelism:   *parallel,
				ParallelPaths: *parallelPaths,
				Limit:         *n,
				Cache:         cache,
				Remote:        remoteProver,
				Progress:      progress,
				Obs:           reg,
				Trace:         tracer,
			})
		}
		if *coldwarm {
			// Locally the two runs share one proof cache, so the warm run
			// measures the in-process cache. Remotely each run gets a fresh
			// local cache: warm hits must come back over the wire from the
			// daemon's memory/disk stores.
			var shared *loader.ProofCache
			if remoteProver == nil {
				shared = loader.NewProofCache()
			}
			ev = runOnce(shared)
			coldWall = ev.WallClock.Milliseconds()
			warm := runOnce(shared)
			warmWall = warm.WallClock.Milliseconds()
			if !*quiet {
				fmt.Fprintf(os.Stderr, "cold run: %dms, warm run: %dms (%.2fx; remote=%v)\n",
					coldWall, warmWall, warmSpeedup(ev.WallClock.Nanoseconds(), warm.WallClock.Nanoseconds()),
					remoteProver != nil)
			}
		} else {
			ev = runOnce(nil)
		}
		if *jsonPath != "" {
			meta := reportMeta{
				remoteAddr: *remote,
				hedge:      *hedge,
				fleet:      fleet,
				coldWallMS: coldWall,
				warmWallMS: warmWall,
			}
			if err := writeJSON(*jsonPath, ev, reg, meta); err != nil {
				fmt.Fprintln(os.Stderr, "bcfbench:", err)
				os.Exit(1)
			}
		}
		if *traceFile != "" {
			// Pull the spans each daemon recorded under this run's trace ID
			// and merge them — clock-offset corrected — so the single output
			// file shows client and daemon timelines stitched together.
			if remoteProver != nil {
				sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				var serr error
				switch {
				case fleet != nil:
					serr = fleet.Stitch(sctx)
				case client != nil:
					serr = client.StitchSpans(sctx)
				}
				cancel()
				if serr != nil {
					fmt.Fprintln(os.Stderr, "bcfbench: span stitch:", serr)
				} else if !*quiet {
					fmt.Fprintln(os.Stderr, "stitched daemon spans into the trace")
				}
			}
			if err := tracer.WriteFile(*traceFile); err != nil {
				fmt.Fprintln(os.Stderr, "bcfbench: trace:", err)
				os.Exit(1)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "wrote %d trace events to %s (open in ui.perfetto.dev)\n",
					tracer.Len(), *traceFile)
			}
		}
	}

	printed := false
	show := func(name string, s string) {
		fmt.Println(s)
		printed = true
		_ = name
	}
	if wantAll || *table == "accept" {
		show("accept", ev.AcceptanceTable())
	}
	if wantAll || *table == "1" {
		show("1", eval.Table1String(*src))
	}
	if wantAll || *table == "2" {
		show("2", eval.Table2String())
	}
	if wantAll || *table == "3" {
		show("3", ev.Table3String())
	}
	if wantAll || *fig == "8" {
		show("8", ev.Figure8String())
	}
	if wantAll || *table == "duration" {
		show("duration", ev.DurationString())
	}
	if wantAll || *table == "classes" {
		show("classes", ev.ClassBreakdownString())
	}
	if wantAll || *table == "cache" {
		show("cache", ev.CacheTableString())
	}
	if wantAll || *table == "zone" {
		show("zone", eval.ZoneTable())
	}
	if *metrics {
		show("metrics", reg.Snapshot().TableString())
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := rpprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
	if !printed {
		if *jsonPath != "" || *traceFile != "" {
			return // a pure machine-readable run selected nothing to print
		}
		fmt.Fprintln(os.Stderr, "nothing selected; see -h")
		os.Exit(2)
	}
}

// effectiveParallelism mirrors eval.RunOpts's worker-count selection for
// the progress banner.
func effectiveParallelism(requested, size int) int {
	p := requested
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > size && size > 0 {
		p = size
	}
	return p
}

// reportMeta carries the invocation context into the JSON report.
type reportMeta struct {
	remoteAddr string
	hedge      time.Duration
	fleet      *prooffleet.Fleet
	coldWallMS int64
	warmWallMS int64
}

// splitEndpoints parses the -remote flag: a comma-separated endpoint
// list with empty elements dropped.
func splitEndpoints(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}

func writeJSON(path string, ev *eval.Evaluation, reg *obs.Registry, meta reportMeta) error {
	acc := ev.Acceptance()
	var programNS int64
	for _, r := range ev.Results {
		programNS += r.TotalTime.Nanoseconds()
	}
	rep := benchReport{
		GoVersion:          runtime.Version(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		Remote:             meta.remoteAddr != "",
		RemoteAddr:         meta.remoteAddr,
		Corpus:             len(ev.Results),
		InsnLimit:          ev.InsnLimit,
		Parallelism:        ev.Parallelism,
		WallMS:             ev.WallClock.Milliseconds(),
		ProgramMS:          programNS / 1e6,
		BaselineAccepted:   acc.BaselineAccepted,
		BCFAccepted:        acc.BCFAccepted,
		WeakCondition:      acc.WeakCondition,
		InsnLimitReject:    acc.InsnLimit,
		Untriggered:        acc.Untriggered,
		CacheHits:          ev.Cache.Hits,
		CacheMisses:        ev.Cache.Misses,
		CacheHitRate:       ev.Cache.HitRate(),
		CacheEvictions:     ev.Cache.Evictions,
		CacheSize:          ev.Cache.Size,
		RemoteProofs:       ev.RemoteProofs,
		RemoteFallbacks:    ev.RemoteFallbacks,
		RemoteBackpressure: ev.RemoteBackpressure,
		ColdWallMS:         meta.coldWallMS,
		WarmWallMS:         meta.warmWallMS,
	}
	if meta.fleet != nil {
		stats := meta.fleet.Stats()
		rep.Fleet = &stats
		rep.HedgeDelayMS = float64(meta.hedge) / float64(time.Millisecond)
		if meta.hedge < 0 {
			rep.HedgeDelayMS = -1
		}
	}
	if meta.warmWallMS > 0 {
		rep.WarmSpeedup = warmSpeedup(meta.coldWallMS, meta.warmWallMS)
	}
	if reg != nil {
		rep.Metrics = reg.Snapshot()
	}
	if ev.WallClock > 0 {
		rep.Speedup = float64(programNS) / float64(ev.WallClock.Nanoseconds())
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// loadELFDir parses every .o object in dir (sorted by name) into corpus
// entries — one per program section — so the ELF frontend feeds the same
// evaluation pipeline as the synthetic corpus.
func loadELFDir(dir string) ([]corpus.Entry, error) {
	files, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var entries []corpus.Entry
	for _, f := range files {
		if f.IsDir() || !strings.HasSuffix(f.Name(), ".o") {
			continue
		}
		path := dir + string(os.PathSeparator) + f.Name()
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		obj, err := elf.ParseObject(data)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		for _, p := range obj.Programs {
			entries = append(entries, corpus.Entry{
				Index:   len(entries),
				Project: "elf-dir",
				Source:  f.Name(),
				Variant: p.Name,
				Prog:    p,
			})
		}
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("no .o objects found in %s", dir)
	}
	return entries, nil
}

// warmSpeedup is cold/warm, guarded against a zero warm measurement.
func warmSpeedup(cold, warm int64) float64 {
	if warm <= 0 {
		return 0
	}
	return float64(cold) / float64(warm)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bcfbench:", err)
	os.Exit(1)
}

// corpusInsnLimit mirrors the scaled-down budget used by the test suite;
// see EXPERIMENTS.md for the rationale.
func corpusInsnLimit() int { return 4000 }
