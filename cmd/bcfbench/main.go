// Command bcfbench regenerates the paper's evaluation (§6): it runs the
// 512-program dataset through the baseline verifier and through BCF, then
// prints every table and figure with the paper's reference values
// alongside the measured ones.
//
// The corpus programs are independent loads, so the run fans out across a
// worker pool sharing one proof cache (default parallelism: GOMAXPROCS).
// Aggregates are deterministic regardless of parallelism.
//
// Usage:
//
//	bcfbench                 # everything, parallel across all cores
//	bcfbench -parallel 1     # sequential run
//	bcfbench -table accept   # just the acceptance headline
//	bcfbench -table 1|2|3    # a specific table
//	bcfbench -fig 8          # the proof-size distribution
//	bcfbench -table duration # the §6.3 time split + wall-clock speedup
//	bcfbench -table cache    # shared proof-cache hit/miss statistics
//	bcfbench -n 96 -json out.json  # reduced-corpus smoke run, machine-readable
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"bcf/internal/corpus"
	"bcf/internal/eval"
)

// benchReport is the machine-readable output of -json: the acceptance
// headline plus the timing and cache numbers that form the per-commit
// performance trajectory (BENCH_*.json).
type benchReport struct {
	Corpus      int   `json:"corpus"`
	InsnLimit   int   `json:"insn_limit"`
	Parallelism int   `json:"parallelism"`
	WallMS      int64 `json:"wall_ms"`
	// ProgramMS sums per-program analysis time: the sequential-equivalent
	// wall clock. Speedup = program_ms / wall_ms.
	ProgramMS        int64   `json:"program_ms"`
	Speedup          float64 `json:"speedup"`
	BaselineAccepted int     `json:"baseline_accepted"`
	BCFAccepted      int     `json:"bcf_accepted"`
	WeakCondition    int     `json:"weak_condition"`
	InsnLimitReject  int     `json:"insn_limit_rejects"`
	Untriggered      int     `json:"untriggered"`
	CacheHits        int     `json:"cache_hits"`
	CacheMisses      int     `json:"cache_misses"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	CacheEvictions   int     `json:"cache_evictions"`
	CacheSize        int     `json:"cache_size"`
}

func main() {
	table := flag.String("table", "", "which table: accept|1|2|3|duration|zone|classes|cache (default all)")
	fig := flag.String("fig", "", "which figure: 8")
	limit := flag.Int("insn-limit", corpusInsnLimit(), "analyzed-instruction budget")
	src := flag.String("src", ".", "repository root (for Table 1 line counts)")
	quiet := flag.Bool("q", false, "suppress progress output")
	parallel := flag.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
	jsonPath := flag.String("json", "", "write a machine-readable timing/acceptance report to this path")
	n := flag.Int("n", 0, "evaluate only the first N corpus programs (0 = all 512)")
	flag.Parse()

	wantAll := *table == "" && *fig == ""
	needRun := wantAll || *table == "accept" || *table == "3" || *table == "duration" ||
		*table == "classes" || *table == "cache" || *fig == "8" || *jsonPath != ""

	var ev *eval.Evaluation
	if needRun {
		progress := func(done, total int) {
			if !*quiet && done%64 == 0 {
				fmt.Fprintf(os.Stderr, "  ... %d/%d programs\n", done, total)
			}
		}
		if *quiet {
			progress = nil
		}
		size := corpus.Size
		if *n > 0 && *n < size {
			size = *n
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running the %d-program evaluation (insn limit %d, parallelism %d)...\n",
				size, *limit, effectiveParallelism(*parallel, size))
		}
		ev = eval.RunOpts(eval.Options{
			InsnLimit:   *limit,
			Parallelism: *parallel,
			Limit:       *n,
			Progress:    progress,
		})
		if *jsonPath != "" {
			if err := writeJSON(*jsonPath, ev); err != nil {
				fmt.Fprintln(os.Stderr, "bcfbench:", err)
				os.Exit(1)
			}
		}
	}

	printed := false
	show := func(name string, s string) {
		fmt.Println(s)
		printed = true
		_ = name
	}
	if wantAll || *table == "accept" {
		show("accept", ev.AcceptanceTable())
	}
	if wantAll || *table == "1" {
		show("1", eval.Table1String(*src))
	}
	if wantAll || *table == "2" {
		show("2", eval.Table2String())
	}
	if wantAll || *table == "3" {
		show("3", ev.Table3String())
	}
	if wantAll || *fig == "8" {
		show("8", ev.Figure8String())
	}
	if wantAll || *table == "duration" {
		show("duration", ev.DurationString())
	}
	if wantAll || *table == "classes" {
		show("classes", ev.ClassBreakdownString())
	}
	if wantAll || *table == "cache" {
		show("cache", ev.CacheTableString())
	}
	if wantAll || *table == "zone" {
		show("zone", eval.ZoneTable())
	}
	if !printed {
		if *jsonPath != "" {
			return // a pure -json run selected nothing to print
		}
		fmt.Fprintln(os.Stderr, "nothing selected; see -h")
		os.Exit(2)
	}
}

// effectiveParallelism mirrors eval.RunOpts's worker-count selection for
// the progress banner.
func effectiveParallelism(requested, size int) int {
	p := requested
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > size && size > 0 {
		p = size
	}
	return p
}

func writeJSON(path string, ev *eval.Evaluation) error {
	acc := ev.Acceptance()
	var programNS int64
	for _, r := range ev.Results {
		programNS += r.TotalTime.Nanoseconds()
	}
	rep := benchReport{
		Corpus:           len(ev.Results),
		InsnLimit:        ev.InsnLimit,
		Parallelism:      ev.Parallelism,
		WallMS:           ev.WallClock.Milliseconds(),
		ProgramMS:        programNS / 1e6,
		BaselineAccepted: acc.BaselineAccepted,
		BCFAccepted:      acc.BCFAccepted,
		WeakCondition:    acc.WeakCondition,
		InsnLimitReject:  acc.InsnLimit,
		Untriggered:      acc.Untriggered,
		CacheHits:        ev.Cache.Hits,
		CacheMisses:      ev.Cache.Misses,
		CacheHitRate:     ev.Cache.HitRate(),
		CacheEvictions:   ev.Cache.Evictions,
		CacheSize:        ev.Cache.Size,
	}
	if ev.WallClock > 0 {
		rep.Speedup = float64(programNS) / float64(ev.WallClock.Nanoseconds())
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// corpusInsnLimit mirrors the scaled-down budget used by the test suite;
// see EXPERIMENTS.md for the rationale.
func corpusInsnLimit() int { return 4000 }
