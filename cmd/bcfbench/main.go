// Command bcfbench regenerates the paper's evaluation (§6): it runs the
// 512-program dataset through the baseline verifier and through BCF, then
// prints every table and figure with the paper's reference values
// alongside the measured ones.
//
// Usage:
//
//	bcfbench                 # everything
//	bcfbench -table accept   # just the acceptance headline
//	bcfbench -table 1|2|3    # a specific table
//	bcfbench -fig 8          # the proof-size distribution
//	bcfbench -table duration # the §6.3 time split
package main

import (
	"flag"
	"fmt"
	"os"

	"bcf/internal/corpus"
	"bcf/internal/eval"
)

func main() {
	table := flag.String("table", "", "which table: accept|1|2|3|duration|zone|classes (default all)")
	fig := flag.String("fig", "", "which figure: 8")
	limit := flag.Int("insn-limit", corpusInsnLimit(), "analyzed-instruction budget")
	src := flag.String("src", ".", "repository root (for Table 1 line counts)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	wantAll := *table == "" && *fig == ""
	needRun := wantAll || *table == "accept" || *table == "3" || *table == "duration" ||
		*table == "classes" || *fig == "8"

	var ev *eval.Evaluation
	if needRun {
		progress := func(done, total int) {
			if !*quiet && done%64 == 0 {
				fmt.Fprintf(os.Stderr, "  ... %d/%d programs\n", done, total)
			}
		}
		if *quiet {
			progress = nil
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running the %d-program evaluation (insn limit %d)...\n",
				corpus.Size, *limit)
		}
		ev = eval.Run(*limit, progress)
	}

	printed := false
	show := func(name string, s string) {
		fmt.Println(s)
		printed = true
		_ = name
	}
	if wantAll || *table == "accept" {
		show("accept", ev.AcceptanceTable())
	}
	if wantAll || *table == "1" {
		show("1", eval.Table1String(*src))
	}
	if wantAll || *table == "2" {
		show("2", eval.Table2String())
	}
	if wantAll || *table == "3" {
		show("3", ev.Table3String())
	}
	if wantAll || *fig == "8" {
		show("8", ev.Figure8String())
	}
	if wantAll || *table == "duration" {
		show("duration", ev.DurationString())
	}
	if wantAll || *table == "classes" {
		show("classes", ev.ClassBreakdownString())
	}
	if wantAll || *table == "zone" {
		show("zone", eval.ZoneTable())
	}
	if !printed {
		fmt.Fprintln(os.Stderr, "nothing selected; see -h")
		os.Exit(2)
	}
}

// corpusInsnLimit mirrors the scaled-down budget used by the test suite;
// see EXPERIMENTS.md for the rationale.
func corpusInsnLimit() int { return 4000 }
