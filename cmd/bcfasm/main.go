// Command bcfasm assembles and disassembles eBPF programs in the textual
// dialect used throughout this repository.
//
// Usage:
//
//	bcfasm -o prog.bin prog.s                  # assemble to raw bytecode
//	bcfasm -elf -type xdp -o prog.o prog.s     # assemble to an ELF object
//	bcfasm -d prog.bin                         # disassemble to stdout
//
// With -elf the output is an ELF relocatable object (see internal/elf):
// the program lands in a section named after -type, `map[N]` references
// become relocations against map symbols, and map definitions for every
// referenced index are emitted with -map-value-size sized values. The -d
// form also accepts ELF objects and disassembles every program in them.
package main

import (
	"flag"
	"fmt"
	"os"

	"bcf/internal/ebpf"
	"bcf/internal/elf"
)

func main() {
	out := flag.String("o", "", "output file (assembled bytecode or ELF object)")
	dis := flag.Bool("d", false, "disassemble the input instead of assembling")
	emitELF := flag.Bool("elf", false, "emit an ELF relocatable object instead of raw bytecode")
	progType := flag.String("type", "tracepoint", "program type for -elf: tracepoint|xdp|socket_filter|sched_cls|cgroup_skb")
	valueSize := flag.Uint("map-value-size", 16, "value size of emitted map definitions (-elf)")
	name := flag.String("name", "", "program name for -elf (default: derived from the input path)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bcfasm [-d] [-elf] [-o out] input")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *dis {
		if elf.IsObject(data) {
			obj, err := elf.ParseObject(data)
			if err != nil {
				fatal(err)
			}
			for _, p := range obj.Programs {
				fmt.Printf("; %s (%s)\n", p.Name, p.Type)
				fmt.Print(p.Disassemble())
			}
			return
		}
		insns, err := ebpf.DecodeProgram(data)
		if err != nil {
			fatal(err)
		}
		p := &ebpf.Program{Insns: insns}
		fmt.Print(p.Disassemble())
		return
	}
	insns, err := ebpf.Assemble(string(data))
	if err != nil {
		fatal(err)
	}
	if *emitELF {
		prog := &ebpf.Program{
			Name:  progName(*name, flag.Arg(0)),
			Type:  parseType(*progType),
			Insns: insns,
			Maps:  mapsFor(insns, uint32(*valueSize)),
		}
		obj, err := elf.EmitProgram(prog)
		if err != nil {
			fatal(err)
		}
		if *out == "" {
			fatal(fmt.Errorf("-elf requires -o"))
		}
		if err := os.WriteFile(*out, obj, 0o644); err != nil {
			fatal(err)
		}
		return
	}
	raw := ebpf.EncodeProgram(insns)
	if *out == "" {
		fmt.Printf("%d instructions, %d bytes\n", len(insns), len(raw))
		p := &ebpf.Program{Insns: insns}
		fmt.Print(p.Disassemble())
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatal(err)
	}
}

// mapsFor builds array map definitions covering every map index the
// program references, mirroring bcfverify's synthetic map[0].
func mapsFor(insns []ebpf.Instruction, valueSize uint32) []*ebpf.MapSpec {
	max := -1
	for _, ins := range insns {
		if ins.IsLoadFromMap() && int(ins.Imm) > max {
			max = int(ins.Imm)
		}
	}
	maps := make([]*ebpf.MapSpec, max+1)
	for i := range maps {
		maps[i] = &ebpf.MapSpec{
			Name: fmt.Sprintf("map%d", i), Type: ebpf.MapArray,
			KeySize: 4, ValueSize: valueSize, MaxEntries: 16,
		}
	}
	return maps
}

func progName(flagName, path string) string {
	if flagName != "" {
		return flagName
	}
	base := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			base = path[i+1:]
			break
		}
	}
	for i := 0; i < len(base); i++ {
		if base[i] == '.' {
			return base[:i]
		}
	}
	return base
}

func parseType(s string) ebpf.ProgType {
	switch s {
	case "xdp":
		return ebpf.ProgXDP
	case "socket_filter":
		return ebpf.ProgSocketFilter
	case "sched_cls":
		return ebpf.ProgSchedCLS
	case "cgroup_skb":
		return ebpf.ProgCgroupSkb
	default:
		return ebpf.ProgTracepoint
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bcfasm:", err)
	os.Exit(1)
}
