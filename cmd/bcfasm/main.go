// Command bcfasm assembles and disassembles eBPF programs in the textual
// dialect used throughout this repository.
//
// Usage:
//
//	bcfasm -o prog.bin prog.s        # assemble
//	bcfasm -d prog.bin               # disassemble to stdout
package main

import (
	"flag"
	"fmt"
	"os"

	"bcf/internal/ebpf"
)

func main() {
	out := flag.String("o", "", "output file (assembled bytecode)")
	dis := flag.Bool("d", false, "disassemble the input instead of assembling")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bcfasm [-d] [-o out.bin] input")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	if *dis {
		insns, err := ebpf.DecodeProgram(data)
		if err != nil {
			fatal(err)
		}
		p := &ebpf.Program{Insns: insns}
		fmt.Print(p.Disassemble())
		return
	}
	insns, err := ebpf.Assemble(string(data))
	if err != nil {
		fatal(err)
	}
	raw := ebpf.EncodeProgram(insns)
	if *out == "" {
		fmt.Printf("%d instructions, %d bytes\n", len(insns), len(raw))
		p := &ebpf.Program{Insns: insns}
		fmt.Print(p.Disassemble())
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bcfasm:", err)
	os.Exit(1)
}
