// Command bcfgen materializes the evaluation dataset to disk: one
// bytecode object per program plus a manifest with family, provenance
// analog, expected outcome and map configuration (the public-dataset
// analog of the paper's bpf-progs release).
//
// Usage:
//
//	bcfgen -o dataset/
//	bcfgen -elf -o dataset/    # ELF relocatable objects instead of raw bytecode
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bcf/internal/corpus"
	"bcf/internal/ebpf"
)

type manifestEntry struct {
	Index     int    `json:"index"`
	Name      string `json:"name"`
	Family    string `json:"family"`
	Project   string `json:"project"`
	Source    string `json:"source"`
	Variant   string `json:"variant"`
	Expect    string `json:"expected_outcome"`
	File      string `json:"file"`
	Insns     int    `json:"insns"`
	Bytes     int    `json:"bytes"`
	ValueSize uint32 `json:"map_value_size,omitempty"`
}

func main() {
	out := flag.String("o", "dataset", "output directory")
	emitELF := flag.Bool("elf", false, "emit ELF relocatable objects (.o) instead of raw bytecode (.bin)")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	var manifest []manifestEntry
	for _, e := range corpus.Generate() {
		var raw []byte
		var file string
		if *emitELF {
			var err error
			raw, err = e.EmitELF()
			if err != nil {
				fatal(fmt.Errorf("entry %d (%s): %w", e.Index, e.Prog.Name, err))
			}
			file = fmt.Sprintf("%03d_%s.o", e.Index, e.Prog.Name)
		} else {
			raw = ebpf.EncodeProgram(e.Prog.Insns)
			file = fmt.Sprintf("%03d_%s.bin", e.Index, e.Prog.Name)
		}
		if err := os.WriteFile(filepath.Join(*out, file), raw, 0o644); err != nil {
			fatal(err)
		}
		me := manifestEntry{
			Index: e.Index, Name: e.Prog.Name, Family: e.Family.String(),
			Project: e.Project, Source: e.Source, Variant: e.Variant,
			Expect: e.Expect.String(), File: file,
			Insns: len(e.Prog.Insns), Bytes: len(raw),
		}
		if len(e.Prog.Maps) > 0 {
			me.ValueSize = e.Prog.Maps[0].ValueSize
		}
		manifest = append(manifest, me)
	}
	data, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(filepath.Join(*out, "manifest.json"), data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d programs + manifest.json to %s\n", len(manifest), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bcfgen:", err)
	os.Exit(1)
}
