// Command bcfverify loads an eBPF program through the verifier, with or
// without BCF's proof-guided abstraction refinement, and reports the
// verdict plus the refinement transcript.
//
// Usage:
//
//	bcfverify [-bcf] [-debug] [-stats] [-map-value-size N] prog.s
//	bcfverify [-bcf] prog.o
//
// The input is textual assembly (see bcfasm); `-bin` accepts raw bytecode
// instead, and an ELF relocatable object (detected by magic) is loaded
// through the internal/elf frontend: each program section is verified in
// turn with the object's own maps and section-derived program type, and
// the process exits non-zero if any program is rejected. For the textual
// and raw forms, `map[0]` references resolve to a single array map whose
// value size is set by -map-value-size. `-stats` dumps the telemetry
// snapshot of the load (per-stage latency histograms, pipeline counters)
// as JSON after the verdict.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"bcf"
	"bcf/internal/bcferr"
	"bcf/internal/elf"
	"bcf/internal/obs"
	"bcf/internal/proofrpc"
)

func main() {
	useBCF := flag.Bool("bcf", false, "enable proof-guided abstraction refinement")
	debug := flag.Bool("debug", false, "print the verifier log")
	bin := flag.Bool("bin", false, "input is raw bytecode, not assembly")
	valueSize := flag.Uint("map-value-size", 16, "value size of map[0]")
	insnLimit := flag.Int("insn-limit", 0, "analyzed-instruction budget (0 = kernel default)")
	parallelPaths := flag.Int("parallel-paths", 0, "verifier path-exploration workers (<=1 = sequential DFS)")
	progType := flag.String("type", "tracepoint", "program type: tracepoint|xdp|socket_filter|sched_cls|cgroup_skb (ignored for ELF input)")
	stats := flag.Bool("stats", false, "dump the telemetry metrics snapshot as JSON after the verdict")
	remote := flag.String("remote", "", "prove via a bcfd daemon at this address (unix:/path or host:port)")
	remoteOnly := flag.Bool("remote-only", false, "with -remote: fail instead of falling back to the in-process solver")
	listen := flag.String("listen", "", "serve /metrics, /debug/journal and /debug/pprof on this address while verifying")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bcfverify [flags] prog.s|prog.o")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var progs []*bcf.Program
	if elf.IsObject(data) {
		obj, err := elf.ParseObject(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bcfverify: %s: REJECTED (elf): %v (class %s)\n",
				flag.Arg(0), err, bcferr.ClassOf(err))
			os.Exit(1)
		}
		progs = obj.Programs
	} else {
		var insns []bcf.Instruction
		if *bin {
			insns, err = decodeBin(data)
		} else {
			insns, err = bcf.Assemble(string(data))
		}
		if err != nil {
			fatal(err)
		}
		progs = []*bcf.Program{{
			Name:  flag.Arg(0),
			Type:  parseType(*progType),
			Insns: insns,
			Maps: []*bcf.MapSpec{{
				Name: "map0", Type: bcf.MapArray,
				KeySize: 4, ValueSize: uint32(*valueSize), MaxEntries: 16,
			}},
		}}
	}

	opts := []bcf.Option{}
	if *useBCF {
		opts = append(opts, bcf.WithBCF())
	}
	if *debug {
		opts = append(opts, bcf.WithDebug())
	}
	if *insnLimit > 0 {
		opts = append(opts, bcf.WithInsnLimit(*insnLimit))
	}
	if *parallelPaths > 1 {
		opts = append(opts, bcf.WithParallelPaths(*parallelPaths))
	}
	var reg *bcf.Registry
	if *stats || *listen != "" {
		reg = bcf.NewRegistry()
		reg.SetJournal(obs.NewJournal(0))
		opts = append(opts, bcf.WithTelemetry(reg, nil))
	}
	if *listen != "" {
		go func() {
			if err := http.ListenAndServe(*listen, obs.DebugMux(reg, nil)); err != nil {
				fmt.Fprintln(os.Stderr, "bcfverify: listen:", err)
			}
		}()
	}
	if *remote != "" {
		client, err := proofrpc.Dial(*remote, proofrpc.ClientOptions{Obs: reg})
		if err != nil {
			fatal(err)
		}
		defer client.Close()
		opts = append(opts, bcf.WithRemoteProver(client))
		if *remoteOnly {
			opts = append(opts, bcf.WithRemoteOnly())
		}
	} else if *remoteOnly {
		fatal(fmt.Errorf("-remote-only requires -remote"))
	}

	mode := "baseline"
	if *useBCF {
		mode = "BCF"
	}
	rejected := false
	for _, prog := range progs {
		prefix := ""
		if len(progs) > 1 {
			prefix = prog.Name + ": "
		}
		start := time.Now()
		report := bcf.Verify(prog, opts...)
		elapsed := time.Since(start)

		for _, line := range report.Log {
			fmt.Println(" ", line)
		}
		if report.Accepted {
			fmt.Printf("%sACCEPTED (%s) in %v\n", prefix, mode, elapsed.Round(time.Microsecond))
		} else {
			rejected = true
			fmt.Printf("%sREJECTED (%s): %v (class %s)\n", prefix, mode, report.Err, report.Class)
		}
		fmt.Printf("  insns processed: %d, paths: %d, states pruned: %d\n",
			report.Stats.InsnProcessed, report.Stats.PathsExplored, report.Stats.StatesPruned)
		if *useBCF {
			fmt.Printf("  refinements: %d granted / %d requested\n",
				report.Refinements, report.RefinementRequests)
			for i, d := range report.RefinementDetails() {
				fmt.Printf("    #%d: track=%d insns, condition=%dB, proof=%dB, check=%dµs\n",
					i, d.TrackLen, d.CondBytes, d.ProofBytes, d.CheckNanos/1000)
			}
			if report.Counterexample != nil {
				fmt.Printf("  counterexample: %v\n", report.Counterexample)
			}
		}
	}
	if *stats {
		fmt.Println("  metrics:")
		if err := reg.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if rejected {
		os.Exit(1)
	}
}

func decodeBin(data []byte) ([]bcf.Instruction, error) {
	// Raw bytecode decoding lives in the internal ebpf package; go via
	// the assembler-compatible path.
	return bcf.DecodeBytecode(data)
}

func parseType(s string) bcf.ProgType {
	switch s {
	case "xdp":
		return bcf.ProgXDP
	case "socket_filter":
		return bcf.ProgSocketFilter
	case "sched_cls":
		return bcf.ProgSchedCLS
	case "cgroup_skb":
		return bcf.ProgCgroupSkb
	default:
		return bcf.ProgTracepoint
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bcfverify:", err)
	os.Exit(1)
}
