// Command bcfverify loads an eBPF program through the verifier, with or
// without BCF's proof-guided abstraction refinement, and reports the
// verdict plus the refinement transcript.
//
// Usage:
//
//	bcfverify [-bcf] [-debug] [-stats] [-map-value-size N] prog.s
//
// The input is textual assembly (see bcfasm); `-bin` accepts raw bytecode
// instead. `map[0]` references in the program resolve to a single array
// map whose value size is set by -map-value-size. `-stats` dumps the
// telemetry snapshot of the load (per-stage latency histograms, pipeline
// counters) as JSON after the verdict.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"bcf"
	"bcf/internal/obs"
	"bcf/internal/proofrpc"
)

func main() {
	useBCF := flag.Bool("bcf", false, "enable proof-guided abstraction refinement")
	debug := flag.Bool("debug", false, "print the verifier log")
	bin := flag.Bool("bin", false, "input is raw bytecode, not assembly")
	valueSize := flag.Uint("map-value-size", 16, "value size of map[0]")
	insnLimit := flag.Int("insn-limit", 0, "analyzed-instruction budget (0 = kernel default)")
	parallelPaths := flag.Int("parallel-paths", 0, "verifier path-exploration workers (<=1 = sequential DFS)")
	progType := flag.String("type", "tracepoint", "program type: tracepoint|xdp|socket_filter|sched_cls")
	stats := flag.Bool("stats", false, "dump the telemetry metrics snapshot as JSON after the verdict")
	remote := flag.String("remote", "", "prove via a bcfd daemon at this address (unix:/path or host:port)")
	remoteOnly := flag.Bool("remote-only", false, "with -remote: fail instead of falling back to the in-process solver")
	listen := flag.String("listen", "", "serve /metrics, /debug/journal and /debug/pprof on this address while verifying")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: bcfverify [flags] prog.s")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var insns []bcf.Instruction
	if *bin {
		insns, err = decodeBin(data)
	} else {
		insns, err = bcf.Assemble(string(data))
	}
	if err != nil {
		fatal(err)
	}
	prog := &bcf.Program{
		Name:  flag.Arg(0),
		Type:  parseType(*progType),
		Insns: insns,
		Maps: []*bcf.MapSpec{{
			Name: "map0", Type: bcf.MapArray,
			KeySize: 4, ValueSize: uint32(*valueSize), MaxEntries: 16,
		}},
	}

	opts := []bcf.Option{}
	if *useBCF {
		opts = append(opts, bcf.WithBCF())
	}
	if *debug {
		opts = append(opts, bcf.WithDebug())
	}
	if *insnLimit > 0 {
		opts = append(opts, bcf.WithInsnLimit(*insnLimit))
	}
	if *parallelPaths > 1 {
		opts = append(opts, bcf.WithParallelPaths(*parallelPaths))
	}
	var reg *bcf.Registry
	if *stats || *listen != "" {
		reg = bcf.NewRegistry()
		reg.SetJournal(obs.NewJournal(0))
		opts = append(opts, bcf.WithTelemetry(reg, nil))
	}
	if *listen != "" {
		go func() {
			if err := http.ListenAndServe(*listen, obs.DebugMux(reg, nil)); err != nil {
				fmt.Fprintln(os.Stderr, "bcfverify: listen:", err)
			}
		}()
	}
	if *remote != "" {
		client, err := proofrpc.Dial(*remote, proofrpc.ClientOptions{Obs: reg})
		if err != nil {
			fatal(err)
		}
		defer client.Close()
		opts = append(opts, bcf.WithRemoteProver(client))
		if *remoteOnly {
			opts = append(opts, bcf.WithRemoteOnly())
		}
	} else if *remoteOnly {
		fatal(fmt.Errorf("-remote-only requires -remote"))
	}

	start := time.Now()
	report := bcf.Verify(prog, opts...)
	elapsed := time.Since(start)

	for _, line := range report.Log {
		fmt.Println(" ", line)
	}
	mode := "baseline"
	if *useBCF {
		mode = "BCF"
	}
	if report.Accepted {
		fmt.Printf("ACCEPTED (%s) in %v\n", mode, elapsed.Round(time.Microsecond))
	} else {
		fmt.Printf("REJECTED (%s): %v\n", mode, report.Err)
	}
	fmt.Printf("  insns processed: %d, paths: %d, states pruned: %d\n",
		report.Stats.InsnProcessed, report.Stats.PathsExplored, report.Stats.StatesPruned)
	if *useBCF {
		fmt.Printf("  refinements: %d granted / %d requested\n",
			report.Refinements, report.RefinementRequests)
		for i, d := range report.RefinementDetails() {
			fmt.Printf("    #%d: track=%d insns, condition=%dB, proof=%dB, check=%dµs\n",
				i, d.TrackLen, d.CondBytes, d.ProofBytes, d.CheckNanos/1000)
		}
		if report.Counterexample != nil {
			fmt.Printf("  counterexample: %v\n", report.Counterexample)
		}
	}
	if *stats {
		fmt.Println("  metrics:")
		if err := reg.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	}
	if !report.Accepted {
		os.Exit(1)
	}
}

func decodeBin(data []byte) ([]bcf.Instruction, error) {
	// Raw bytecode decoding lives in the internal ebpf package; go via
	// the assembler-compatible path.
	return bcf.DecodeBytecode(data)
}

func parseType(s string) bcf.ProgType {
	switch s {
	case "xdp":
		return bcf.ProgXDP
	case "socket_filter":
		return bcf.ProgSocketFilter
	case "sched_cls":
		return bcf.ProgSchedCLS
	default:
		return bcf.ProgTracepoint
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bcfverify:", err)
	os.Exit(1)
}
