// Command bcfd is the remote proving daemon: it serves the proofrpc
// protocol over TCP and/or Unix sockets, wrapping the solver behind a
// singleflight-coalescing memory cache and a content-addressed disk
// store so identical obligations — across clients, loads and restarts —
// are proven once.
//
// Usage:
//
//	bcfd -unix /run/bcfd.sock                      # serve on a Unix socket
//	bcfd -listen :9190                             # serve on TCP
//	bcfd -unix /run/bcfd.sock -cache-dir /var/cache/bcfd   # persistent proofs
//	bcfd -http :9191                               # /metrics (Prometheus text)
//
// Clients: bcfverify -remote unix:/run/bcfd.sock, bcfbench -remote ...,
// or any loader configured with proofrpc.Client. A SIGINT/SIGTERM
// drains gracefully: in-flight obligations finish, then the daemon
// exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"bcf/internal/loader"
	"bcf/internal/obs"
	"bcf/internal/proofd"
	"bcf/internal/solver"
)

func main() {
	listen := flag.String("listen", "", "serve the proving protocol on this TCP address (e.g. :9190)")
	unixSock := flag.String("unix", "", "serve the proving protocol on this Unix socket path")
	cacheDir := flag.String("cache-dir", "", "content-addressed disk proof store (empty = memory only)")
	httpAddr := flag.String("http", "", "serve /metrics, /debug/journal and /debug/pprof on this address")
	traceFile := flag.String("tracefile", "", "write the daemon's own Perfetto trace here on exit")
	traceCap := flag.Int("trace-cap", 0, "span ring capacity for ship-spans-back (0 = default)")
	journalSize := flag.Int("journal-size", 0, "flight-recorder ring entries (0 = default)")
	maxInflight := flag.Int("max-inflight", 0, "max concurrently-proving requests (0 = 2×GOMAXPROCS)")
	cacheCap := flag.Int("cache-cap", 0, "in-memory proof cache entries (0 = default)")
	proveTimeout := flag.Duration("prove-timeout", 0, "per-obligation solver deadline (0 = none)")
	maxConflicts := flag.Int64("max-conflicts", 0, "SAT conflict budget per obligation (0 = solver default)")
	drain := flag.Duration("drain", proofd.DefaultDrainTimeout, "graceful shutdown drain budget")
	chaosDelay := flag.Duration("chaos-delay", 0, "stall every prove by this much (fleet hedging/drain drills)")
	quiet := flag.Bool("q", false, "suppress the startup banner")
	flag.Parse()

	if *listen == "" && *unixSock == "" {
		fmt.Fprintln(os.Stderr, "bcfd: need -listen and/or -unix; see -h")
		os.Exit(2)
	}

	reg := obs.NewRegistry()
	journal := obs.NewJournal(*journalSize)
	reg.SetJournal(journal)
	// The tracer is always on: clients that propagate a trace context ask
	// the daemon to retain its spans (ship-spans-back), so the ring must
	// exist before the first traced request arrives. Bounded, so an
	// untraced long-lived daemon pays one fixed allocation.
	tracer := obs.NewTracerCap(*traceCap).WithProcess(os.Getpid(), "bcfd")
	opts := proofd.Options{
		Solver:       solver.Options{MaxConflicts: *maxConflicts},
		ProveTimeout: *proveTimeout,
		Cache:        loader.NewProofCacheCap(*cacheCap),
		MaxInflight:  *maxInflight,
		ChaosDelay:   *chaosDelay,
		Obs:          reg,
		Trace:        tracer,
	}
	if *cacheDir != "" {
		store, err := proofd.OpenStore(*cacheDir, reg)
		if err != nil {
			fatal(err)
		}
		opts.Store = store
		if !*quiet {
			fmt.Fprintf(os.Stderr, "bcfd: disk store %s (%d proofs)\n", store.Dir(), store.Len())
		}
	}
	srv := proofd.New(opts)

	var listeners []net.Listener
	addListener := func(network, addr string) {
		l, err := net.Listen(network, addr)
		if err != nil {
			fatal(err)
		}
		listeners = append(listeners, l)
		if !*quiet {
			fmt.Fprintf(os.Stderr, "bcfd: serving on %s %s\n", network, l.Addr())
		}
	}
	if *unixSock != "" {
		// A stale socket from an unclean exit would fail the bind.
		os.Remove(*unixSock)
		addListener("unix", *unixSock)
	}
	if *listen != "" {
		addListener("tcp", *listen)
	}

	if *httpAddr != "" {
		mux := obs.DebugMux(reg, nil)
		go func() {
			if err := http.ListenAndServe(*httpAddr, mux); err != nil {
				fmt.Fprintln(os.Stderr, "bcfd: http:", err)
			}
		}()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "bcfd: /metrics and /debug/journal on %s\n", *httpAddr)
		}
	}

	errs := make(chan error, len(listeners))
	for _, l := range listeners {
		go func(l net.Listener) { errs <- srv.Serve(l) }(l)
	}

	// SIGQUIT dumps the flight recorder without exiting (black-box
	// inspection of a live daemon); SIGINT/SIGTERM drain gracefully.
	quitSig := make(chan os.Signal, 1)
	signal.Notify(quitSig, syscall.SIGQUIT)
	go func() {
		for range quitSig {
			fmt.Fprintf(os.Stderr, "bcfd: SIGQUIT: flight recorder (%d events recorded)\n", journal.Seq())
			journal.Dump(os.Stderr)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		if !*quiet {
			fmt.Fprintf(os.Stderr, "bcfd: %v: draining (budget %v)\n", s, *drain)
		}
	case err := <-errs:
		if err != nil {
			fmt.Fprintln(os.Stderr, "bcfd: serve:", err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "bcfd: drain:", err)
	}
	if *unixSock != "" {
		os.Remove(*unixSock)
	}
	if *traceFile != "" {
		if err := tracer.WriteFile(*traceFile); err != nil {
			fmt.Fprintln(os.Stderr, "bcfd: tracefile:", err)
		} else if !*quiet {
			fmt.Fprintf(os.Stderr, "bcfd: trace written to %s\n", *traceFile)
		}
	}
	if !*quiet {
		snap := srv.Cache().Snapshot()
		fmt.Fprintf(os.Stderr, "bcfd: exit: cache hits=%d misses=%d coalesced=%d size=%d\n",
			snap.Hits, snap.Misses, snap.Coalesced, snap.Size)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bcfd:", err)
	os.Exit(1)
}
