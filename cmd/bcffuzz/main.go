// Command bcffuzz runs the coverage-guided soundness campaign
// (internal/fuzzcamp): feedback-driven mutation fuzzing of the verifier
// against the three differential oracles, fanned out over the proofrpc
// frame protocol.
//
// Usage:
//
//	bcffuzz -execs 256 -workers 4 -json -          # bounded local campaign
//	bcffuzz -duration 3m -promote out/ -json stats.json   # nightly shape
//	bcffuzz -corpus-dir state/ ...                 # resume + save corpus coverage
//	bcffuzz -sabotage collapse-add -stop-on-failure       # detection drill
//	bcffuzz -listen tcp::7072 ...                  # also accept remote workers
//	bcffuzz -connect tcp:mgr:7072                  # pure worker process
//	bcffuzz -remote unix:/run/bcfd.sock ...        # prove via bcfd / fleet
//
// The campaign is deterministic for a fixed -seed and -execs budget at
// any -workers count. Exit status: 0 clean, 1 oracle violations found,
// 2 usage or runtime error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"bcf/internal/fuzzcamp"
	"bcf/internal/loader"
	"bcf/internal/obs"
	"bcf/internal/prooffleet"
	"bcf/internal/proofrpc"
	"bcf/internal/verifier"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bcffuzz:", err)
	os.Exit(2)
}

func main() {
	var (
		seed       = flag.Int64("seed", 1, "campaign seed (fixed seed + fixed -execs = identical results at any -workers)")
		workers    = flag.Int("workers", 4, "local worker connections to run")
		execs      = flag.Int("execs", 0, "total exec budget (0 = unbounded when -duration set, else one round)")
		rounds     = flag.Int("rounds", 0, "round budget (overrides -execs when set)")
		batch      = flag.Int("batch", 32, "work items per campaign round")
		chunk      = flag.Int("chunk", 0, "items per worker pull (0 = default)")
		duration   = flag.Duration("duration", 0, "wall-clock budget (stops at the next round boundary)")
		inputs     = flag.Int("inputs", 0, "interpreter samples per oracle (0 = default)")
		advEvery   = flag.Int("adversary-every", 4, "run the checker-adversary oracle on every Nth item (<0 = never)")
		minBudget  = flag.Int("minimize-budget", 0, "oracle evaluations per failure minimization (0 = default)")
		stopOnFail = flag.Bool("stop-on-failure", false, "finish after the first failing item (deterministic item order)")
		sabotage   = flag.String("sabotage", "", "plant a verifier bug for a detection drill: collapse-add | skip-mem-bounds")
		promote    = flag.String("promote", "", "directory for minimized .bpfasm reproducers")
		corpusDir  = flag.String("corpus-dir", "", "directory for cross-process corpus state: resume coverage from it, save back on exit")
		remote     = flag.String("remote", "", "bcfd endpoint(s) for remote proving (comma-separated = fleet)")
		listen     = flag.String("listen", "", "also accept external workers on this address (unix:/path or tcp:host:port)")
		connect    = flag.String("connect", "", "run as a worker for the manager at this address (no local campaign)")
		jsonOut    = flag.String("json", "", "write campaign stats JSON to this file (- = stdout)")
		quiet      = flag.Bool("q", false, "suppress per-round progress")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := obs.NewRegistry()

	var sab *verifier.Sabotage
	switch *sabotage {
	case "":
	case "collapse-add":
		sab = &verifier.Sabotage{CollapseAddBounds: true}
	case "skip-mem-bounds":
		sab = &verifier.Sabotage{SkipMemBounds: true}
	default:
		fatal(fmt.Errorf("unknown -sabotage %q (collapse-add | skip-mem-bounds)", *sabotage))
	}

	var remoteProver loader.RemoteProver
	if *remote != "" {
		if endpoints := splitEndpoints(*remote); len(endpoints) > 1 {
			f, err := prooffleet.New(prooffleet.Options{Endpoints: endpoints, Obs: reg})
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			remoteProver = f
		} else {
			client, err := proofrpc.Dial(*remote, proofrpc.ClientOptions{Obs: reg})
			if err != nil {
				fatal(err)
			}
			defer client.Close()
			remoteProver = client
		}
	}

	exec := fuzzcamp.ExecOptions{
		Inputs:   *inputs,
		Sabotage: sab,
		Remote:   remoteProver,
	}

	// Pure worker mode: connect to a remote manager and pull work until
	// it says done.
	if *connect != "" {
		network, addr, err := proofrpc.ParseAddr(*connect)
		if err != nil {
			fatal(err)
		}
		conn, err := net.Dial(network, addr)
		if err != nil {
			fatal(err)
		}
		if err := fuzzcamp.RunWorker(ctx, conn, exec); err != nil && ctx.Err() == nil {
			fatal(err)
		}
		return
	}

	opt := fuzzcamp.Options{
		Seed:           *seed,
		Rounds:         *rounds,
		Execs:          *execs,
		Batch:          *batch,
		AdversaryEvery: *advEvery,
		StopOnFailure:  *stopOnFail,
		MinimizeBudget: *minBudget,
		PromoteDir:     *promote,
		Exec:           exec,
		Obs:            reg,
	}
	if !*quiet {
		opt.Log = os.Stderr
	}
	if *duration > 0 {
		opt.Deadline = time.Now().Add(*duration)
	}

	camp := fuzzcamp.New(opt)
	if *corpusDir != "" {
		loaded, err := camp.LoadState(*corpusDir)
		if err != nil {
			fatal(err)
		}
		if loaded && !*quiet {
			fmt.Fprintf(os.Stderr, "resumed corpus state from %s\n", *corpusDir)
		}
	}
	mgr := fuzzcamp.NewManager(camp, *chunk)

	// The local fan-out is the same manager/worker protocol external
	// workers speak, over in-memory pipes: every item crosses a proofrpc
	// frame boundary regardless of where its worker runs.
	var wg sync.WaitGroup
	for i := 0; i < *workers; i++ {
		mside, wside := net.Pipe()
		go mgr.ServeConn(mside)
		wg.Add(1)
		go func() {
			defer wg.Done()
			fuzzcamp.RunWorker(ctx, wside, exec)
		}()
	}
	if *listen != "" {
		network, addr, err := proofrpc.ParseAddr(*listen)
		if err != nil {
			fatal(err)
		}
		ln, err := net.Listen(network, addr)
		if err != nil {
			fatal(err)
		}
		go mgr.Serve(ln)
	}

	select {
	case <-mgr.Done():
	case <-ctx.Done():
		mgr.Stop()
	}
	wg.Wait()
	stats := mgr.Stats(*workers)
	if *corpusDir != "" {
		if err := mgr.SaveState(*corpusDir); err != nil {
			fatal(err)
		}
	}

	if !*quiet {
		fmt.Fprintf(os.Stderr, "campaign done: %d execs in %d rounds (%.0f/sec), coverage %d bits, corpus %d, failures %d seen / %d unique\n",
			stats.Execs, stats.Rounds, stats.ExecsPerSec, stats.CoverageBits, stats.CorpusSize, stats.FailuresSeen, stats.UniqueFailures)
		for _, f := range stats.Failures {
			fmt.Fprintf(os.Stderr, "  FAILURE %s (%d insns, round %d) %s\n", f.Key, f.Insns, f.Round, f.File)
		}
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(stats, "", "  ")
		if err != nil {
			fatal(err)
		}
		buf = append(buf, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fatal(err)
		}
	}
	if stats.UniqueFailures > 0 {
		os.Exit(1)
	}
}

func splitEndpoints(s string) []string {
	var out []string
	for _, e := range strings.Split(s, ",") {
		if e = strings.TrimSpace(e); e != "" {
			out = append(out, e)
		}
	}
	return out
}
