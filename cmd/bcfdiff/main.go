// Command bcfdiff reproduces and explores differential-soundness runs
// from the command line: the same generator, oracles and minimizer the
// internal/difftest suite uses, addressable by seed so a CI or fuzzing
// failure ("generator seed 17, run seed 23") replays exactly.
//
// Usage:
//
//	bcfdiff -seed 17                     # all oracles on generator seed 17
//	bcfdiff -seeds 0-199                 # sweep a seed range
//	bcfdiff -seed 17 -oracle domain      # one oracle only
//	bcfdiff -seed 17 -dump               # print the generated program
//	bcfdiff -regressions                 # run the embedded corpus instead
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"bcf/internal/corpus"
	"bcf/internal/difftest"
	"bcf/internal/ebpf"
	"bcf/internal/loader"
	"bcf/internal/verifier"
)

func main() {
	seed := flag.Int64("seed", -1, "single generator seed")
	seeds := flag.String("seeds", "", "generator seed range lo-hi (inclusive)")
	oracle := flag.String("oracle", "all", "oracle to run: domain, accept, adversary, all")
	inputs := flag.Int("inputs", 8, "randomized inputs per accepted program")
	dump := flag.Bool("dump", false, "print the generated program and exit")
	minimize := flag.Bool("minimize", true, "minimize failing programs before reporting")
	regressions := flag.Bool("regressions", false, "run the embedded regression corpus instead of generated programs")
	flag.Parse()

	var progs []namedProg
	switch {
	case *regressions:
		for _, r := range corpus.MustRegressions() {
			progs = append(progs, namedProg{name: r.Name, seed: 1, prog: r.Prog})
		}
	case *seeds != "":
		lo, hi, err := parseRange(*seeds)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for s := lo; s <= hi; s++ {
			progs = append(progs, genProg(s))
		}
	case *seed >= 0:
		progs = append(progs, genProg(*seed))
	default:
		fmt.Fprintln(os.Stderr, "usage: bcfdiff -seed N | -seeds LO-HI | -regressions  [-oracle domain|accept|adversary|all] [-dump]")
		os.Exit(2)
	}

	if *dump {
		for _, p := range progs {
			fmt.Printf("=== %s ===\n%s", p.name, p.prog.Disassemble())
		}
		return
	}

	failures := 0
	for _, p := range progs {
		failures += run(p, *oracle, *inputs, *minimize)
	}
	if failures > 0 {
		fmt.Printf("%d violation(s)\n", failures)
		os.Exit(1)
	}
	fmt.Printf("%d program(s), no violations\n", len(progs))
}

type namedProg struct {
	name string
	seed int64
	prog *ebpf.Program
}

func genProg(s int64) namedProg {
	return namedProg{name: fmt.Sprintf("gen-seed-%d", s), seed: s, prog: difftest.NewGen(s).Generate()}
}

func cfg() verifier.Config { return verifier.Config{InsnLimit: 200_000} }

func run(p namedProg, oracle string, inputs int, minimize bool) (failures int) {
	report := func(v fmt.Stringer, pred func(*ebpf.Program) bool) {
		failures++
		fmt.Printf("%s: %s\n", p.name, v)
		repro := p.prog
		if minimize {
			repro = difftest.Minimize(p.prog, pred, 400)
		}
		fmt.Printf("reproducer:\n%s", repro.Disassemble())
	}
	if oracle == "domain" || oracle == "all" {
		accepted, v := difftest.CheckDomain(p.prog, cfg(), inputs, p.seed)
		if v != nil {
			report(v, func(q *ebpf.Program) bool {
				_, mv := difftest.CheckDomain(q, cfg(), inputs, p.seed)
				return mv != nil
			})
		} else {
			fmt.Printf("%s: domain oracle ok (accepted=%v)\n", p.name, accepted)
		}
	}
	if oracle == "accept" || oracle == "all" {
		opts := loader.Options{EnableBCF: true, Verifier: cfg()}
		accepted, v := difftest.CheckAcceptSafe(p.prog, opts, inputs, p.seed)
		if v != nil {
			report(v, func(q *ebpf.Program) bool {
				_, mv := difftest.CheckAcceptSafe(q, opts, inputs, p.seed)
				return mv != nil
			})
		} else {
			fmt.Printf("%s: accept-implies-safe oracle ok (accepted=%v)\n", p.name, accepted)
		}
	}
	if oracle == "adversary" || oracle == "all" {
		rng := rand.New(rand.NewSource(p.seed))
		stats, viols := difftest.CheckAdversary(p.prog, loader.Options{Verifier: cfg()}, rng, nil)
		for _, v := range viols {
			failures++
			fmt.Printf("%s: %s\n", p.name, v.String())
		}
		if len(viols) == 0 {
			fmt.Printf("%s: adversary oracle ok (%d rounds, %d mutants)\n", p.name, stats.Rounds, stats.Mutants)
		}
	}
	return failures
}

func parseRange(s string) (lo, hi int64, err error) {
	a, b, ok := strings.Cut(s, "-")
	if !ok {
		return 0, 0, fmt.Errorf("bad -seeds %q: want LO-HI", s)
	}
	if lo, err = strconv.ParseInt(a, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("bad -seeds %q: %w", s, err)
	}
	if hi, err = strconv.ParseInt(b, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("bad -seeds %q: %w", s, err)
	}
	return lo, hi, nil
}
