// Command benchdiff is the perf-regression gate: it compares a freshly
// measured BENCH_*.json artifact against the committed baseline under a
// per-metric tolerance file and exits non-zero on regression, so CI can
// fail a push that slows the verifier or the fleet down.
//
// Usage:
//
//	benchdiff -baseline BENCH_parallel_verifier.json -new new.json \
//	          -rules .github/benchdiff/verifier.json
//
// The rules file is a JSON array of {path, min_ratio, max_ratio,
// optional, note}: path is a dotted selector into the (possibly nested)
// artifact, min_ratio the floor for higher-is-better metrics, max_ratio
// the ceiling for lower-is-better ones, both on the new/baseline ratio.
//
// Exit status: 0 all bounds hold, 1 at least one regression, 2 usage or
// malformed input (including a non-optional metric missing — a gate
// that silently stops measuring is not a gate).
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	baselinePath := flag.String("baseline", "", "committed baseline BENCH_*.json")
	newPath := flag.String("new", "", "freshly measured BENCH_*.json")
	rulesPath := flag.String("rules", "", "JSON tolerance rules (array of {path,min_ratio,max_ratio,optional})")
	quiet := flag.Bool("q", false, "print only failures")
	flag.Parse()
	if *baselinePath == "" || *newPath == "" || *rulesPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: need -baseline, -new and -rules; see -h")
		os.Exit(2)
	}

	var baseline, newDoc map[string]any
	var rules []Rule
	for _, l := range []struct {
		path string
		into any
	}{
		{*baselinePath, &baseline},
		{*newPath, &newDoc},
		{*rulesPath, &rules},
	} {
		if err := loadJSON(l.path, l.into); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
	}
	if len(rules) == 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: rules file declares no rules")
		os.Exit(2)
	}

	verdicts, err := compare(baseline, newDoc, rules)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	failed := 0
	for _, v := range verdicts {
		switch {
		case v.Failed:
			failed++
			fmt.Printf("FAIL %-40s baseline=%-12g new=%-12g %s", v.Rule.Path, v.Baseline, v.New, v.Reason)
			if v.Rule.Note != "" {
				fmt.Printf(" (%s)", v.Rule.Note)
			}
			fmt.Println()
		case v.Skipped:
			if !*quiet {
				fmt.Printf("SKIP %-40s %s\n", v.Rule.Path, v.Reason)
			}
		default:
			if !*quiet {
				fmt.Printf("ok   %-40s baseline=%-12g new=%-12g ratio=%.3f\n",
					v.Rule.Path, v.Baseline, v.New, v.Ratio)
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d of %d metrics regressed\n", failed, len(verdicts))
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("benchdiff: %d metrics within tolerance\n", len(verdicts))
	}
}
