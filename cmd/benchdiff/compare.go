package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Rule bounds one metric of a BENCH_*.json artifact. The comparator
// computes ratio = new/baseline for the dotted Path and fails the gate
// when the ratio leaves the declared band:
//
//   - MinRatio guards higher-is-better metrics (speedup, cache hit
//     rate): ratio < MinRatio is a regression.
//   - MaxRatio guards lower-is-better metrics (wall clock, p99):
//     ratio > MaxRatio is a regression.
//
// Either bound may be omitted (zero = unchecked). Optional rules skip
// silently when the path is absent from either file — for metrics that
// only exist in some configurations (fleet percentiles without
// -remote) — while a missing path on a required rule is a hard error:
// a gate that silently stops measuring is worse than a red one.
type Rule struct {
	Path     string  `json:"path"`
	MinRatio float64 `json:"min_ratio,omitempty"`
	MaxRatio float64 `json:"max_ratio,omitempty"`
	Optional bool    `json:"optional,omitempty"`
	Note     string  `json:"note,omitempty"`
}

// Verdict is the outcome of one rule.
type Verdict struct {
	Rule     Rule
	Baseline float64
	New      float64
	Ratio    float64
	Skipped  bool
	Failed   bool
	Reason   string
}

// lookup resolves a dotted path ("hedge_on.fleet.latency_p99_ms")
// through nested JSON objects to a numeric leaf.
func lookup(doc map[string]any, dotted string) (float64, bool) {
	cur := any(doc)
	for _, seg := range strings.Split(dotted, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return 0, false
		}
		cur, ok = m[seg]
		if !ok {
			return 0, false
		}
	}
	v, ok := cur.(float64)
	return v, ok
}

// compare evaluates every rule against the two artifacts. The returned
// error covers structural problems (a required path missing); metric
// regressions are reported per-verdict so the caller can print them all
// before failing.
func compare(baseline, newDoc map[string]any, rules []Rule) ([]Verdict, error) {
	verdicts := make([]Verdict, 0, len(rules))
	for _, r := range rules {
		v := Verdict{Rule: r}
		b, bok := lookup(baseline, r.Path)
		n, nok := lookup(newDoc, r.Path)
		switch {
		case !bok || !nok:
			if !r.Optional {
				side := "baseline"
				if bok {
					side = "new"
				}
				return verdicts, fmt.Errorf("metric %q missing from %s artifact", r.Path, side)
			}
			v.Skipped = true
			v.Reason = "metric absent (optional)"
		case b == 0:
			// No ratio exists against a zero baseline; only an exact hold
			// is checkable.
			v.Baseline, v.New = b, n
			if n != 0 && r.MaxRatio > 0 {
				v.Failed = true
				v.Reason = fmt.Sprintf("baseline is 0 but new is %g", n)
			} else {
				v.Skipped = true
				v.Reason = "zero baseline"
			}
		default:
			v.Baseline, v.New = b, n
			v.Ratio = n / b
			if r.MinRatio > 0 && v.Ratio < r.MinRatio {
				v.Failed = true
				v.Reason = fmt.Sprintf("ratio %.3f below floor %.3f", v.Ratio, r.MinRatio)
			}
			if r.MaxRatio > 0 && v.Ratio > r.MaxRatio {
				v.Failed = true
				v.Reason = fmt.Sprintf("ratio %.3f above ceiling %.3f", v.Ratio, r.MaxRatio)
			}
		}
		verdicts = append(verdicts, v)
	}
	return verdicts, nil
}

// loadJSON reads one artifact or rules file.
func loadJSON(path string, into any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, into); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}
