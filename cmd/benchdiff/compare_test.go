package main

import (
	"encoding/json"
	"testing"
)

func doc(t *testing.T, s string) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal([]byte(s), &m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLookupDottedPath(t *testing.T) {
	m := doc(t, `{"a": 1.5, "b": {"c": {"d": 2}}, "s": "str"}`)
	if v, ok := lookup(m, "a"); !ok || v != 1.5 {
		t.Fatalf("a = %v, %v", v, ok)
	}
	if v, ok := lookup(m, "b.c.d"); !ok || v != 2 {
		t.Fatalf("b.c.d = %v, %v", v, ok)
	}
	for _, p := range []string{"missing", "b.c.missing", "a.deeper", "s"} {
		if _, ok := lookup(m, p); ok {
			t.Fatalf("lookup(%q) unexpectedly resolved", p)
		}
	}
}

func TestCompareBounds(t *testing.T) {
	base := doc(t, `{"speedup": 2.4, "wall_ms": 100, "nested": {"p99": 10}}`)

	// Within tolerance on every axis.
	ok := doc(t, `{"speedup": 2.3, "wall_ms": 110, "nested": {"p99": 11}}`)
	rules := []Rule{
		{Path: "speedup", MinRatio: 0.85},
		{Path: "wall_ms", MaxRatio: 1.25},
		{Path: "nested.p99", MaxRatio: 1.5},
	}
	vs, err := compare(base, ok, rules)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		if v.Failed || v.Skipped {
			t.Fatalf("%s: failed=%v skipped=%v (%s)", v.Rule.Path, v.Failed, v.Skipped, v.Reason)
		}
	}

	// A speedup collapse trips the floor; a wall-clock blowup the ceiling.
	bad := doc(t, `{"speedup": 1.0, "wall_ms": 300, "nested": {"p99": 9}}`)
	vs, err = compare(base, bad, rules)
	if err != nil {
		t.Fatal(err)
	}
	if !vs[0].Failed || !vs[1].Failed || vs[2].Failed {
		t.Fatalf("verdicts = %+v", vs)
	}
}

func TestCompareMissingMetric(t *testing.T) {
	base := doc(t, `{"speedup": 2.4}`)
	fresh := doc(t, `{"speedup": 2.4}`)

	// Required metric missing from both: structural error, not a pass.
	if _, err := compare(base, fresh, []Rule{{Path: "wall_ms", MaxRatio: 1.2}}); err == nil {
		t.Fatal("missing required metric did not error")
	}

	// Optional metric missing: skipped, gate still green.
	vs, err := compare(base, fresh, []Rule{
		{Path: "speedup", MinRatio: 0.9},
		{Path: "fleet.latency_p99_ms", MaxRatio: 1.5, Optional: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if vs[0].Failed || !vs[1].Skipped || vs[1].Failed {
		t.Fatalf("verdicts = %+v", vs)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := doc(t, `{"failovers": 0, "hedges": 0}`)

	// 0 -> 0 holds; 0 -> nonzero under a ceiling is a regression.
	vs, err := compare(base, doc(t, `{"failovers": 0, "hedges": 4}`), []Rule{
		{Path: "failovers", MaxRatio: 1.0},
		{Path: "hedges", MaxRatio: 1.0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !vs[0].Skipped || vs[0].Failed {
		t.Fatalf("0->0 verdict = %+v", vs[0])
	}
	if !vs[1].Failed {
		t.Fatalf("0->4 verdict = %+v", vs[1])
	}
}

// TestCompareCommittedArtifacts runs the real rules files against the
// real committed baselines compared to themselves: the self-ratio is
// 1.0 everywhere, so the gate must be green. Guards against a rules
// file referencing a path the artifact does not have.
func TestCompareCommittedArtifacts(t *testing.T) {
	cases := []struct{ artifact, rules string }{
		{"../../BENCH_parallel_verifier.json", "../../.github/benchdiff/verifier.json"},
		{"../../BENCH_remote_fleet.json", "../../.github/benchdiff/fleet.json"},
	}
	for _, c := range cases {
		var base map[string]any
		var rules []Rule
		if err := loadJSON(c.artifact, &base); err != nil {
			t.Fatal(err)
		}
		if err := loadJSON(c.rules, &rules); err != nil {
			t.Fatal(err)
		}
		if len(rules) == 0 {
			t.Fatalf("%s: empty rules", c.rules)
		}
		vs, err := compare(base, base, rules)
		if err != nil {
			t.Fatalf("%s vs itself: %v", c.artifact, err)
		}
		for _, v := range vs {
			if v.Failed {
				t.Errorf("%s: self-comparison failed on %s: %s", c.artifact, v.Rule.Path, v.Reason)
			}
		}
	}
}
